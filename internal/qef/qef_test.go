package qef

import (
	"math"
	"math/rand"
	"testing"

	"ube/internal/model"
	"ube/internal/pcsa"
)

// buildUniverse creates n sources; source i holds tuples produced by gen(i)
// and advertises the true cardinality. withSigs controls which sources
// cooperate (nil = all).
func buildUniverse(t *testing.T, tuples [][]uint64, coop []bool) *model.Universe {
	t.Helper()
	u := &model.Universe{}
	for i, ts := range tuples {
		s := model.Source{
			ID:          i,
			Name:        "s",
			Attributes:  []string{"a"},
			Cardinality: int64(len(ts)),
		}
		if coop == nil || coop[i] {
			sig := pcsa.MustNew(256, 7)
			for _, tp := range ts {
				sig.AddUint64(tp)
			}
			s.Signature = sig
		}
		u.Sources = append(u.Sources, s)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	return u
}

// seqTuples returns [from, to) as tuple IDs.
func seqTuples(from, to int) []uint64 {
	out := make([]uint64, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, uint64(i))
	}
	return out
}

func setOf(u *model.Universe, ids ...int) *model.SourceSet {
	return model.NewSourceSetOf(u.N(), ids...)
}

func TestCard(t *testing.T) {
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 1000),
		seqTuples(0, 3000),
		seqTuples(0, 6000),
	}, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.TotalCardinality() != 10000 {
		t.Fatalf("total = %d", ctx.TotalCardinality())
	}
	c := Card{}
	if got := c.Eval(ctx, setOf(u, 0)); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Card({0}) = %v, want 0.1", got)
	}
	if got := c.Eval(ctx, setOf(u, 0, 1, 2)); math.Abs(got-1) > 1e-12 {
		t.Errorf("Card(U) = %v, want 1", got)
	}
	if got := c.Eval(ctx, setOf(u)); got != 0 {
		t.Errorf("Card(∅) = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	// Sources 0 and 1 are identical; source 2 is disjoint.
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 10000),
		seqTuples(0, 10000),
		seqTuples(10000, 20000),
	}, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage{}
	full := cov.Eval(ctx, setOf(u, 0, 1, 2))
	if math.Abs(full-1) > 1e-9 {
		t.Errorf("Coverage(U) = %v, want 1 (same sketch as universe)", full)
	}
	half := cov.Eval(ctx, setOf(u, 0))
	if half < 0.4 || half > 0.6 {
		t.Errorf("Coverage({0}) = %v, want ≈0.5", half)
	}
	dup := cov.Eval(ctx, setOf(u, 0, 1))
	if math.Abs(dup-half) > 1e-9 {
		t.Errorf("adding a duplicate source changed coverage: %v vs %v", dup, half)
	}
	if got := cov.Eval(ctx, setOf(u)); got != 0 {
		t.Errorf("Coverage(∅) = %v", got)
	}
}

func TestCoverageLEQCard(t *testing.T) {
	// For fully cooperative universes, Coverage(S) ≤ Card(S)/min... more
	// precisely |∪S| ≤ Σ|s|, so Coverage·|∪U| ≤ Card·Σ|t|. With
	// duplicates across sources, coverage relative to card drops. Here we
	// check the raw invariant on random subsets modulo sketch noise.
	r := rand.New(rand.NewSource(3))
	var tuples [][]uint64
	for i := 0; i < 8; i++ {
		start := r.Intn(5000)
		tuples = append(tuples, seqTuples(start, start+2000+r.Intn(3000)))
	}
	u := buildUniverse(t, tuples, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	cov, card := Coverage{}, Card{}
	for trial := 0; trial < 50; trial++ {
		S := model.NewSourceSet(u.N())
		for i := 0; i < u.N(); i++ {
			if r.Intn(2) == 0 {
				S.Add(i)
			}
		}
		c := cov.Eval(ctx, S) * ctx.UniverseDistinct()
		k := card.Eval(ctx, S) * float64(ctx.TotalCardinality())
		if c > k*1.15 { // 15% slack for sketch error
			t.Fatalf("trial %d: union estimate %v exceeds cardinality sum %v", trial, c, k)
		}
	}
}

func TestRedundancy(t *testing.T) {
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 10000),     // A
		seqTuples(0, 10000),     // duplicate of A
		seqTuples(10000, 20000), // disjoint B
		seqTuples(20000, 30000), // disjoint C
	}, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	red := Redundancy{}
	// Identical sources: worst case, ≈0.
	worst := red.Eval(ctx, setOf(u, 0, 1))
	if worst > 0.1 {
		t.Errorf("Redundancy(identical) = %v, want ≈0", worst)
	}
	// Disjoint sources: best case, ≈1.
	best := red.Eval(ctx, setOf(u, 2, 3))
	if best < 0.9 {
		t.Errorf("Redundancy(disjoint) = %v, want ≈1", best)
	}
	// Mixed: strictly between.
	mid := red.Eval(ctx, setOf(u, 0, 1, 2))
	if mid <= worst || mid >= best {
		t.Errorf("Redundancy(mixed) = %v, want between %v and %v", mid, worst, best)
	}
	// Singleton and empty edge cases.
	if got := red.Eval(ctx, setOf(u, 0)); got != 1 {
		t.Errorf("Redundancy(singleton) = %v, want 1", got)
	}
	if got := red.Eval(ctx, setOf(u)); got != 0 {
		t.Errorf("Redundancy(∅) = %v, want 0", got)
	}
}

func TestUncooperativeSources(t *testing.T) {
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 5000),
		seqTuples(5000, 10000),
		seqTuples(10000, 15000), // uncooperative
	}, []bool{true, true, false})
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	cov, red, card := Coverage{}, Redundancy{}, Card{}
	// Coverage of the uncooperative source alone is 0.
	if got := cov.Eval(ctx, setOf(u, 2)); got != 0 {
		t.Errorf("Coverage(uncoop) = %v, want 0", got)
	}
	if got := red.Eval(ctx, setOf(u, 2)); got != 0 {
		t.Errorf("Redundancy(uncoop) = %v, want 0", got)
	}
	// But its cardinality still counts.
	if got := card.Eval(ctx, setOf(u, 2)); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Card(uncoop) = %v, want 1/3", got)
	}
	// Adding the uncooperative source to a cooperative set leaves the
	// union estimate unchanged.
	a := cov.Eval(ctx, setOf(u, 0, 1))
	b := cov.Eval(ctx, setOf(u, 0, 1, 2))
	if a != b {
		t.Errorf("uncooperative source changed coverage: %v vs %v", a, b)
	}
	// Redundancy over {coop A, coop B, uncoop} uses only the two
	// cooperative sources, which are disjoint → ≈1.
	if got := red.Eval(ctx, setOf(u, 0, 1, 2)); got < 0.9 {
		t.Errorf("Redundancy with uncoop member = %v, want ≈1", got)
	}
}

func TestAllUncooperativeUniverse(t *testing.T) {
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 100),
		seqTuples(0, 200),
	}, []bool{false, false})
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.UniverseDistinct() != 0 {
		t.Error("no signatures → no universe distinct estimate")
	}
	if got := (Coverage{}).Eval(ctx, setOf(u, 0, 1)); got != 0 {
		t.Errorf("Coverage = %v", got)
	}
	if got := (Redundancy{}).Eval(ctx, setOf(u, 0, 1)); got != 0 {
		t.Errorf("Redundancy = %v", got)
	}
	if got := (Card{}).Eval(ctx, setOf(u, 0, 1)); got != 1 {
		t.Errorf("Card = %v", got)
	}
}

func TestQEFsInRange(t *testing.T) {
	// Property: every QEF stays in [0,1] on random universes and subsets.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(6)
		tuples := make([][]uint64, n)
		coop := make([]bool, n)
		for i := range tuples {
			start := r.Intn(3000)
			tuples[i] = seqTuples(start, start+10+r.Intn(4000))
			coop[i] = r.Intn(4) != 0
		}
		u := buildUniverse(t, tuples, coop)
		for i := range u.Sources {
			u.Sources[i].Characteristics = map[string]float64{
				"mttf": r.Float64() * 200,
			}
		}
		ctx, err := NewContext(u)
		if err != nil {
			t.Fatal(err)
		}
		qefs := []QEF{
			Card{}, Coverage{}, Redundancy{},
			Characteristic{Char: "mttf", Agg: WSum{}},
			Characteristic{Char: "mttf", Agg: Mean{}},
			Characteristic{Char: "mttf", Agg: Min{}},
			Characteristic{Char: "mttf", Agg: Max{}},
		}
		for sub := 0; sub < 20; sub++ {
			S := model.NewSourceSet(n)
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					S.Add(i)
				}
			}
			for _, q := range qefs {
				v := q.Eval(ctx, S)
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("trial %d: %s(%v) = %v out of range", trial, q.Name(), S.Elements(), v)
				}
			}
		}
	}
}

func TestWSumPaperFormula(t *testing.T) {
	// Hand-computed wsum: two sources, mttf 50 and 150 (range [50,150]
	// across U which also has a 3rd source at 100), cardinalities 100
	// and 300.
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 100),
		seqTuples(0, 300),
		seqTuples(0, 200),
	}, nil)
	u.Sources[0].Characteristics = map[string]float64{"mttf": 50}
	u.Sources[1].Characteristics = map[string]float64{"mttf": 150}
	u.Sources[2].Characteristics = map[string]float64{"mttf": 100}
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	c := Characteristic{Char: "mttf", Agg: WSum{}}
	// wsum = ((50-50)*100 + (150-50)*300) / ((100+300)*(150-50))
	//      = 30000 / 40000 = 0.75
	got := c.Eval(ctx, setOf(u, 0, 1))
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("wsum = %v, want 0.75", got)
	}
	if c.Name() != "mttf" {
		t.Errorf("Characteristic QEF name = %q", c.Name())
	}
}

func TestAggregatorEdgeCases(t *testing.T) {
	u := buildUniverse(t, [][]uint64{seqTuples(0, 100), seqTuples(0, 100)}, nil)
	u.Sources[0].Characteristics = map[string]float64{"fee": 10}
	u.Sources[1].Characteristics = map[string]float64{"fee": 10}
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []Aggregator{WSum{}, Mean{}, Min{}, Max{}} {
		// Constant characteristic: every set scores 1.
		if got := agg.Aggregate(ctx, setOf(u, 0, 1), "fee"); got != 1 {
			t.Errorf("%s constant char = %v, want 1", agg.Name(), got)
		}
		// Unknown characteristic: 0.
		if got := agg.Aggregate(ctx, setOf(u, 0), "nope"); got != 0 {
			t.Errorf("%s unknown char = %v, want 0", agg.Name(), got)
		}
		// Empty set: 0.
		if got := agg.Aggregate(ctx, setOf(u), "fee"); got != 0 {
			t.Errorf("%s empty set = %v, want 0", agg.Name(), got)
		}
	}
}

func TestMissingCharacteristicTreatedAsWorst(t *testing.T) {
	u := buildUniverse(t, [][]uint64{seqTuples(0, 100), seqTuples(0, 100)}, nil)
	u.Sources[0].Characteristics = map[string]float64{"mttf": 100}
	u.Sources[1].Characteristics = map[string]float64{"mttf": 200}
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	// Source 1 defines mttf=200 (best); a hypothetical set containing a
	// source without the characteristic scores as if it had the minimum.
	u.Sources[0].Characteristics = nil
	got := (Mean{}).Aggregate(ctx, setOf(u, 0, 1), "mttf")
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mean with missing value = %v, want 0.5", got)
	}
}

func TestAggregatorByName(t *testing.T) {
	for _, name := range []string{"wsum", "mean", "min", "max"} {
		a, ok := AggregatorByName(name)
		if !ok || a.Name() != name {
			t.Errorf("AggregatorByName(%q) = %v, %v", name, a, ok)
		}
	}
	if _, ok := AggregatorByName("median"); ok {
		t.Error("unknown aggregator should not resolve")
	}
}

func TestWeights(t *testing.T) {
	qefs := []QEF{Card{}, Coverage{}}
	if err := (Weights{"card": 0.6, "coverage": 0.4}).Validate(qefs); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	bad := []Weights{
		{"card": 0.6},                            // missing
		{"card": 0.6, "coverage": 0.6},           // sum > 1
		{"card": -0.1, "coverage": 1.1},          // out of range
		{"card": 0.5, "cov": 0.5},                // wrong key
		{"card": 0.3, "coverage": 0.3, "x": 0.4}, // extra key
	}
	for i, w := range bad {
		if err := w.Validate(qefs); err == nil {
			t.Errorf("bad weights %d accepted", i)
		}
	}
	n := Weights{"card": 2, "coverage": 3}.Normalized()
	if math.Abs(n["card"]-0.4) > 1e-12 || math.Abs(n["coverage"]-0.6) > 1e-12 {
		t.Errorf("Normalized = %v", n)
	}
	z := Weights{"card": 0}.Normalized()
	if z["card"] != 0 {
		t.Errorf("all-zero Normalized = %v", z)
	}
	w := Weights{"card": 1.0}
	c := w.Clone()
	c["card"] = 0.5
	if w["card"] != 1.0 {
		t.Error("Clone is shallow")
	}
}

func TestComposite(t *testing.T) {
	u := buildUniverse(t, [][]uint64{
		seqTuples(0, 4000),
		seqTuples(0, 6000),
	}, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	qefs := []QEF{Card{}, Coverage{}}
	comp, err := NewComposite(qefs, Weights{"card": 0.5, "coverage": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	S := setOf(u, 0)
	want := 0.5*(Card{}).Eval(ctx, S) + 0.5*(Coverage{}).Eval(ctx, S)
	if got := comp.Eval(ctx, S); math.Abs(got-want) > 1e-12 {
		t.Errorf("composite = %v, want %v", got, want)
	}
	bd := comp.Breakdown(ctx, S)
	if len(bd) != 2 || bd["card"] != (Card{}).Eval(ctx, S) {
		t.Errorf("breakdown = %v", bd)
	}
	if comp.Weight("card") != 0.5 || comp.Weight("nope") != 0 {
		t.Error("Weight lookup wrong")
	}
	if len(comp.QEFs()) != 2 {
		t.Error("QEFs() wrong")
	}
	// Invalid weights are rejected at construction.
	if _, err := NewComposite(qefs, Weights{"card": 1, "coverage": 1}); err == nil {
		t.Error("invalid weights accepted")
	}
	// Zero-weight QEFs are skipped but legal.
	comp2, err := NewComposite(qefs, Weights{"card": 1, "coverage": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := comp2.Eval(ctx, S); got != (Card{}).Eval(ctx, S) {
		t.Errorf("zero-weight composite = %v", got)
	}
}
