// Package qef implements µBE's quality evaluation functions (paper §2.3,
// §4, §5). A QEF maps a candidate set of sources S to a quality score in
// [0,1]; the overall quality of S is the weighted sum of all QEFs, with
// user-chosen weights that sum to 1.
//
// The data-dependent QEFs — Card, Coverage and Redundancy — need the
// cardinalities of unions of sources, which µBE estimates from cached PCSA
// signatures without ever touching source data (§4): the bitwise OR of the
// per-source signatures is the signature of the union.
package qef

import (
	"math"
	"sync"

	"ube/internal/floats"
	"ube/internal/model"
	"ube/internal/pcsa"
)

// A QEF evaluates the aggregate quality of a set of sources on one quality
// dimension. Implementations must return values in [0,1], higher is better.
type QEF interface {
	// Name identifies the QEF, e.g. "card" or "mttf"; weights are keyed
	// by this name.
	Name() string
	// Eval scores the source set S within the given universe context.
	Eval(ctx *Context, S *model.SourceSet) float64
}

// Context carries the per-universe precomputed state shared by all QEF
// evaluations: total cardinality, the distinct-count estimate for the whole
// universe, characteristic ranges, and a scratch sketch for unions.
type Context struct {
	U *model.Universe

	totalCard int64
	// universeDistinct estimates |∪_{t∈U} t| over cooperative sources.
	universeDistinct float64
	// charRange caches [min,max] of each characteristic across U.
	charRange map[string][2]float64
	// scratch pools union sketches so concurrent Eval calls (parallel
	// solvers fan candidate evaluations across cores) don't allocate
	// one per estimate. Nil when no source cooperates.
	scratch *sync.Pool
}

// NewContext validates the universe and precomputes shared state.
func NewContext(u *model.Universe) (*Context, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	ctx := &Context{
		U:         u,
		totalCard: u.TotalCardinality(),
		charRange: make(map[string][2]float64),
	}
	for i := range u.Sources {
		s := &u.Sources[i]
		if s.Signature != nil && ctx.scratch == nil {
			proto := s.Signature
			ctx.scratch = &sync.Pool{New: func() any {
				sk := proto.Clone()
				sk.Reset()
				return sk
			}}
		}
		// Min/max folds commute, so visiting one source's characteristics
		// in map order cannot change the resulting ranges.
		//ube:nondeterministic-ok per-key min/max fold is order-independent
		for name, v := range s.Characteristics {
			r, ok := ctx.charRange[name]
			if !ok {
				ctx.charRange[name] = [2]float64{v, v}
				continue
			}
			if v < r[0] {
				r[0] = v
			}
			if v > r[1] {
				r[1] = v
			}
			ctx.charRange[name] = r
		}
	}
	if ctx.scratch != nil {
		all := model.NewSourceSet(u.N())
		for i := range u.Sources {
			all.Add(i)
		}
		ctx.universeDistinct = ctx.unionEstimate(all)
	}
	return ctx, nil
}

// TotalCardinality returns Σ_{t∈U}|t|.
func (ctx *Context) TotalCardinality() int64 { return ctx.totalCard }

// UniverseDistinct returns the PCSA estimate of the number of distinct
// tuples across all cooperative sources, or 0 when no source cooperates.
func (ctx *Context) UniverseDistinct() float64 { return ctx.universeDistinct }

// CharRange returns the [min,max] range of a characteristic across the
// universe and whether any source defines it.
func (ctx *Context) CharRange(name string) (lo, hi float64, ok bool) {
	r, ok := ctx.charRange[name]
	return r[0], r[1], ok
}

// unionEstimate ORs the signatures of the cooperative sources in S into
// the scratch sketch and returns the PCSA estimate. Zero when no source in
// S cooperates.
func (ctx *Context) unionEstimate(S *model.SourceSet) float64 {
	if ctx.scratch == nil {
		return 0
	}
	sk := ctx.scratch.Get().(*pcsa.Sketch)
	defer func() {
		sk.Reset()
		ctx.scratch.Put(sk)
	}()
	found := false
	S.ForEach(func(id int) {
		sig := ctx.U.Sources[id].Signature
		if sig == nil {
			return
		}
		// Signature compatibility was checked by Universe.Validate.
		if err := sk.UnionInto(sig); err != nil {
			panic(err)
		}
		found = true
	})
	if !found {
		return 0
	}
	return sk.Estimate()
}

// cooperativeStats returns, over the cooperative sources of S, the count
// and cardinality sum.
func (ctx *Context) cooperativeStats(S *model.SourceSet) (n int, card int64) {
	S.ForEach(func(id int) {
		if ctx.U.Sources[id].Signature != nil {
			n++
			card += ctx.U.Sources[id].Cardinality
		}
	})
	return n, card
}

// Card is F2 (§4): Card(S) = Σ_{s∈S}|s| / Σ_{t∈U}|t|, the fraction of the
// universe's total data volume that S provides.
type Card struct{}

// Name implements QEF.
func (Card) Name() string { return "card" }

// Eval implements QEF.
func (Card) Eval(ctx *Context, S *model.SourceSet) float64 {
	if ctx.totalCard == 0 {
		return 0
	}
	var sum int64
	S.ForEach(func(id int) { sum += ctx.U.Sources[id].Cardinality })
	return float64(sum) / float64(ctx.totalCard)
}

// Coverage is F3 (§4): the fraction of the universe's distinct tuples that
// S provides, |∪_{s∈S}s| / |∪_{t∈U}t|, estimated via PCSA signatures.
// Uncooperative sources contribute nothing to either union (§4).
type Coverage struct{}

// Name implements QEF.
func (Coverage) Name() string { return "coverage" }

// Eval implements QEF.
func (Coverage) Eval(ctx *Context, S *model.SourceSet) float64 {
	if floats.Zero(ctx.universeDistinct) {
		return 0
	}
	cov := ctx.unionEstimate(S) / ctx.universeDistinct
	// Estimation noise can push the ratio a hair past 1.
	return math.Min(cov, 1)
}

// Redundancy is F4 (§4): a measure of the overlap among the sources of S,
// oriented so that 1 is best (pairwise disjoint sources) and 0 is worst
// (all sources hold the same data):
//
//	Redundancy(S) = (k·|∪S| / Σ_{s∈S}|s| − 1) / (k − 1)
//
// over the k cooperative sources of S. With k ≤ 1 no overlap is possible
// and the score is 1 if S has a cooperative source, else 0 (§4 assigns
// uncooperative sources zero redundancy quality).
type Redundancy struct{}

// Name implements QEF.
func (Redundancy) Name() string { return "redundancy" }

// Eval implements QEF.
func (Redundancy) Eval(ctx *Context, S *model.SourceSet) float64 {
	k, card := ctx.cooperativeStats(S)
	if k == 0 {
		return 0
	}
	if k == 1 {
		return 1
	}
	if card == 0 {
		return 1 // no data, no overlap
	}
	distinct := ctx.unionEstimate(S)
	r := (float64(k)*distinct/float64(card) - 1) / float64(k-1)
	// PCSA noise can push the ratio slightly outside [0,1].
	return math.Max(0, math.Min(r, 1))
}
