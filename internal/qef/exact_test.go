package qef

import (
	"math"
	"math/rand"
	"testing"

	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/synth"
)

// TestEstimatedQEFsTrackExactValues cross-checks the sketch-backed QEFs
// against exact distinct counting on the real synthetic workload: coverage
// and redundancy computed from signatures must track the values computed
// by replaying the generator's tuple streams, within PCSA error.
func TestEstimatedQEFsTrackExactValues(t *testing.T) {
	cfg := synth.QuickConfig(40)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}

	// Exact distinct count of the whole universe.
	all := pcsa.NewDenseSet(cfg.PoolSize)
	for i := range u.Sources {
		synth.StreamTuples(cfg, i, u.Sources[i].Cardinality, all.Add)
	}
	universeDistinct := float64(all.Count())

	r := rand.New(rand.NewSource(21))
	scratch := pcsa.NewDenseSet(cfg.PoolSize)
	cov, red := Coverage{}, Redundancy{}
	for trial := 0; trial < 10; trial++ {
		k := 2 + r.Intn(10)
		perm := r.Perm(u.N())[:k]
		S := model.NewSourceSet(u.N())
		scratch.Reset()
		var cardSum int64
		for _, id := range perm {
			S.Add(id)
			cardSum += u.Sources[id].Cardinality
			synth.StreamTuples(cfg, id, u.Sources[id].Cardinality, scratch.Add)
		}
		distinct := float64(scratch.Count())

		exactCov := distinct / universeDistinct
		estCov := cov.Eval(ctx, S)
		if math.Abs(estCov-exactCov) > 0.08 {
			t.Errorf("trial %d: coverage est %.4f vs exact %.4f", trial, estCov, exactCov)
		}

		exactRed := (float64(k)*distinct/float64(cardSum) - 1) / float64(k-1)
		exactRed = math.Max(0, math.Min(exactRed, 1))
		estRed := red.Eval(ctx, S)
		if math.Abs(estRed-exactRed) > 0.12 {
			t.Errorf("trial %d: redundancy est %.4f vs exact %.4f", trial, estRed, exactRed)
		}
	}
}
