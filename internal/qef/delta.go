package qef

import (
	"math"

	"ube/internal/floats"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/trace"
	"ube/internal/ubedebug"
)

// DeltaEval evaluates a Composite incrementally on candidate sets of the
// form S = base ∪ {add}. A solver's inner loop derives most candidates by
// editing one incumbent set, so the expensive per-set state — the unioned
// PCSA sketch behind Coverage and Redundancy, the integer cardinality
// sums behind Card, each characteristic aggregator's partial fold — can
// be captured once per base (Snapshot) and extended by a single source
// per candidate (EvalAdd): one sketch copy + one signature OR instead of
// |S| ORs, and O(1) arithmetic instead of O(|S|) folds.
//
// The integer sums and the sketch bitmaps are order-independent, so Card,
// Coverage and Redundancy come out bit-identical to the full Composite
// evaluation; floating-point characteristic folds may differ by one
// reassociation step (≪1e-12). Drops are not supported — OR-ing a sketch
// is not invertible — so callers route drop and swap moves through the
// full path.
type DeltaEval struct {
	comp *Composite

	// Stats, when non-nil, receives the evaluator's work counters for
	// solve tracing (delta evaluations, incremental sketch unions,
	// snapshot builds). A pure side channel the engine wires per solve;
	// results never depend on it.
	Stats *trace.Stats
}

// NewDeltaEval returns an incremental evaluator for comp.
func NewDeltaEval(comp *Composite) *DeltaEval { return &DeltaEval{comp: comp} }

// BaseSnapshot is the captured evaluation state of one base set. It is
// immutable after Snapshot returns: EvalAdd only reads it (the sketch is
// extended in a pooled scratch copy), so one snapshot may be shared by
// concurrent solver workers.
type BaseSnapshot struct {
	key      string
	cardSum  int64         // Σ cardinality over all members
	coopN    int           // cooperative members
	coopCard int64         // Σ cardinality over cooperative members
	sketch   *pcsa.Sketch  // union signature of the cooperative members
	distinct float64       // sketch's PCSA estimate (0 when sketch is nil)
	chars    []AggPartials // per-QEF aggregator partials; nil entries fall back

	// debugSum is the checksum of the scalar state and sketch payload at
	// capture time, set only under the ubedebug build tag; EvalAdd
	// re-derives it to catch mutation of the contractually frozen
	// snapshot (e.g. a caller UnionInto-ing the shared sketch).
	debugSum uint64
}

// checksum folds the snapshot's immutable state (the aggregator
// partials, behind interfaces, are not covered). Only called under the
// ubedebug build tag.
func (s *BaseSnapshot) checksum() uint64 {
	h := debugMix(uint64(s.cardSum))
	h = debugMix(h ^ uint64(s.coopN))
	h = debugMix(h ^ uint64(s.coopCard))
	h = debugMix(h ^ math.Float64bits(s.distinct))
	if s.sketch != nil {
		h = debugMix(h ^ s.sketch.Checksum())
	}
	return h
}

// debugMix is the splitmix64 finalizer (Vigna), used only to fold
// snapshot state into debugSum.
func debugMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Key returns the canonical set key of the snapshot's base set.
func (s *BaseSnapshot) Key() string { return s.key }

// Snapshot captures base's evaluation state in one pass over its members.
// Snapshot builds (and their per-member unions) are counted as
// operational work: under parallel workers the same base may be built by
// several workers and only one publish wins, so the counts are
// load-dependent — unlike the deterministic EvalAdd counters.
func (d *DeltaEval) Snapshot(ctx *Context, base *model.SourceSet) *BaseSnapshot {
	d.Stats.Add(trace.OSnapshotBuilds, 1)
	var unions int64
	snap := &BaseSnapshot{key: base.Key()}
	base.ForEach(func(id int) {
		src := &ctx.U.Sources[id]
		snap.cardSum += src.Cardinality
		if src.Signature == nil {
			return
		}
		snap.coopN++
		snap.coopCard += src.Cardinality
		if snap.sketch == nil {
			snap.sketch = src.Signature.Clone()
		} else if err := snap.sketch.UnionInto(src.Signature); err != nil {
			panic(err) // compatibility was checked by Universe.Validate
		} else {
			unions++
		}
	})
	d.Stats.Add(trace.OSnapshotUnions, unions)
	if snap.sketch != nil {
		snap.distinct = snap.sketch.Estimate()
	}
	snap.chars = make([]AggPartials, len(d.comp.qefs))
	for i, f := range d.comp.qefs {
		c, ok := f.(Characteristic)
		// Zero-weight skips must be bit-exact and identical to
		// Composite.Eval's, or the two pipelines would fold different
		// QEF lists for the same weights.
		//ube:float-exact zero means exactly zero (dimension off); must match Composite.Eval's skip
		if !ok || d.comp.weights[i] == 0 {
			continue
		}
		if da, ok := c.Agg.(DeltaAggregator); ok {
			snap.chars[i] = da.Partials(ctx, base, c.Char)
		}
	}
	if ubedebug.Enabled {
		snap.debugSum = snap.checksum()
	}
	return snap
}

// EvalAdd returns the composite quality of S = base ∪ {add}, where snap
// was captured on base and add is a source not in base. S must be the
// materialized candidate: QEFs without delta support (caller-defined
// extras, non-delta aggregators) are evaluated on it in full, which keeps
// EvalAdd exact for them. The weighted accumulation visits QEFs in the
// same order with the same zero-weight skips as Composite.Eval, so the
// float sum reassociates identically.
func (d *DeltaEval) EvalAdd(ctx *Context, snap *BaseSnapshot, add int, S *model.SourceSet) float64 {
	if ubedebug.Enabled {
		ubedebug.Assert(snap.debugSum == snap.checksum(),
			"qef: base snapshot for %q mutated since capture", snap.key)
	}
	d.Stats.Add(trace.CQEFDelta, 1)
	src := &ctx.U.Sources[add]
	coopN, coopCard := snap.coopN, snap.coopCard
	distinct := snap.distinct
	if src.Signature != nil {
		coopN++
		coopCard += src.Cardinality
		// One incremental union batch: scratch copy + OR + estimate.
		d.Stats.Add(trace.CSketchUnions, 1)
		distinct = ctx.estimateWith(snap.sketch, src.Signature)
	}
	q := 0.0
	for i, f := range d.comp.qefs {
		w := d.comp.weights[i]
		//ube:float-exact zero means exactly zero (dimension off); must match Composite.Eval's skip
		if w == 0 {
			continue
		}
		var v float64
		switch f.(type) {
		case Card:
			if ctx.totalCard != 0 {
				v = float64(snap.cardSum+src.Cardinality) / float64(ctx.totalCard)
			}
		case Coverage:
			if !floats.Zero(ctx.universeDistinct) {
				v = min(distinct/ctx.universeDistinct, 1)
			}
		case Redundancy:
			v = redundancyFrom(coopN, coopCard, distinct)
		default:
			if p := snap.chars[i]; p != nil {
				v = p.EvalAdd(ctx, add)
			} else {
				v = f.Eval(ctx, S)
			}
		}
		q += w * v
	}
	return q
}

// redundancyFrom is Redundancy.Eval on precomputed cooperative stats and
// union estimate; the two must stay in lockstep.
func redundancyFrom(k int, card int64, distinct float64) float64 {
	if k == 0 {
		return 0
	}
	if k == 1 {
		return 1
	}
	if card == 0 {
		return 1
	}
	r := (float64(k)*distinct/float64(card) - 1) / float64(k-1)
	return max(0, min(r, 1))
}

// estimateWith returns the PCSA estimate of base's union extended by one
// more signature, using a pooled scratch sketch so concurrent callers
// never share mutable state. A nil base means sig alone.
func (ctx *Context) estimateWith(base, sig *pcsa.Sketch) float64 {
	if ctx.scratch == nil {
		return 0
	}
	sk := ctx.scratch.Get().(*pcsa.Sketch)
	defer func() {
		sk.Reset()
		ctx.scratch.Put(sk)
	}()
	if base != nil {
		if err := sk.CopyFrom(base); err != nil {
			panic(err)
		}
	}
	if err := sk.UnionInto(sig); err != nil {
		panic(err)
	}
	return sk.Estimate()
}
