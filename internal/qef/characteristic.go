package qef

import (
	"ube/internal/floats"
	"ube/internal/model"
)

// An Aggregator folds the per-source values of one characteristic over a
// source set into a score in [0,1] (paper §5). Characteristic values are
// positive reals of any magnitude; aggregators normalize against the
// universe-wide [min,max] range.
type Aggregator interface {
	// Name identifies the aggregation function, e.g. "wsum".
	Name() string
	// Aggregate scores characteristic char over S.
	Aggregate(ctx *Context, S *model.SourceSet, char string) float64
}

// A DeltaAggregator can additionally score S ∪ {id} in O(1) from partial
// sums captured once on S, without re-folding S's members. All the
// built-in aggregators implement it; custom aggregators that don't simply
// fall back to the full fold under incremental evaluation.
type DeltaAggregator interface {
	Aggregator
	// Partials captures the state of Aggregate's fold over S needed to
	// extend the fold by one more source.
	Partials(ctx *Context, S *model.SourceSet, char string) AggPartials
}

// AggPartials is an immutable snapshot of one aggregator's fold over a
// base set. EvalAdd must be pure and safe for concurrent calls: parallel
// solver workers share one snapshot per base.
type AggPartials interface {
	// EvalAdd returns Aggregate(ctx, S ∪ {id}, char) for a source id not
	// in the snapshot's base set, within floating-point reassociation
	// error of the full fold.
	EvalAdd(ctx *Context, id int) float64
}

// value returns source id's characteristic, defaulting to the universe
// minimum when the source does not define it — a missing value earns the
// worst normalized score rather than an error, so heterogeneous universes
// still evaluate.
func value(ctx *Context, id int, char string, lo float64) float64 {
	if v, ok := ctx.U.Sources[id].Characteristic(char); ok {
		return v
	}
	return lo
}

// WSum is the paper's weighted-sum aggregation (§5):
//
//	wsum(S) = Σ_{s∈S}((q_s − min_U q)·|s|) / (Σ_{s∈S}|s| · (max_U q − min_U q))
//
// Each source's normalized characteristic is weighted by its cardinality: a
// highly available source with many tuples is worth more than a highly
// available source with few.
type WSum struct{}

// Name implements Aggregator.
func (WSum) Name() string { return "wsum" }

// Aggregate implements Aggregator.
func (WSum) Aggregate(ctx *Context, S *model.SourceSet, char string) float64 {
	lo, hi, ok := ctx.CharRange(char)
	if !ok || S.Len() == 0 {
		return 0
	}
	if floats.Eq(hi, lo) {
		// Every source is equally good on this dimension; no set can
		// beat another, so score full marks.
		return 1
	}
	var num, den float64
	S.ForEach(func(id int) {
		card := float64(ctx.U.Sources[id].Cardinality)
		num += (value(ctx, id, char, lo) - lo) * card
		den += card
	})
	if floats.Zero(den) {
		return 0
	}
	return num / (den * (hi - lo))
}

// wsumPartials carries WSum's numerator and denominator over a base set.
type wsumPartials struct {
	char     string
	lo, hi   float64
	ok       bool
	num, den float64
}

// Partials implements DeltaAggregator.
func (WSum) Partials(ctx *Context, S *model.SourceSet, char string) AggPartials {
	p := &wsumPartials{char: char}
	p.lo, p.hi, p.ok = ctx.CharRange(char)
	if !p.ok {
		return p
	}
	S.ForEach(func(id int) {
		card := float64(ctx.U.Sources[id].Cardinality)
		p.num += (value(ctx, id, char, p.lo) - p.lo) * card
		p.den += card
	})
	return p
}

// EvalAdd implements AggPartials.
func (p *wsumPartials) EvalAdd(ctx *Context, id int) float64 {
	if !p.ok {
		return 0
	}
	if floats.Eq(p.hi, p.lo) {
		return 1
	}
	card := float64(ctx.U.Sources[id].Cardinality)
	num := p.num + (value(ctx, id, p.char, p.lo)-p.lo)*card
	den := p.den + card
	if floats.Zero(den) {
		return 0
	}
	return num / (den * (p.hi - p.lo))
}

// Mean is the unweighted normalized mean of the characteristic over S.
type Mean struct{}

// Name implements Aggregator.
func (Mean) Name() string { return "mean" }

// Aggregate implements Aggregator.
func (Mean) Aggregate(ctx *Context, S *model.SourceSet, char string) float64 {
	lo, hi, ok := ctx.CharRange(char)
	if !ok || S.Len() == 0 {
		return 0
	}
	if floats.Eq(hi, lo) {
		return 1
	}
	sum := 0.0
	S.ForEach(func(id int) {
		sum += (value(ctx, id, char, lo) - lo) / (hi - lo)
	})
	return sum / float64(S.Len())
}

// meanPartials carries Mean's normalized sum and member count.
type meanPartials struct {
	char   string
	lo, hi float64
	ok     bool
	sum    float64
	n      int
}

// Partials implements DeltaAggregator.
func (Mean) Partials(ctx *Context, S *model.SourceSet, char string) AggPartials {
	p := &meanPartials{char: char, n: S.Len()}
	p.lo, p.hi, p.ok = ctx.CharRange(char)
	if !p.ok || floats.Eq(p.hi, p.lo) {
		return p
	}
	S.ForEach(func(id int) {
		p.sum += (value(ctx, id, char, p.lo) - p.lo) / (p.hi - p.lo)
	})
	return p
}

// EvalAdd implements AggPartials.
func (p *meanPartials) EvalAdd(ctx *Context, id int) float64 {
	if !p.ok {
		return 0
	}
	if floats.Eq(p.hi, p.lo) {
		return 1
	}
	sum := p.sum + (value(ctx, id, p.char, p.lo)-p.lo)/(p.hi-p.lo)
	return sum / float64(p.n+1)
}

// Min scores a set by its weakest member — the right aggregation for
// characteristics where the worst source dominates the experience, such as
// availability of a system that needs all sources up.
type Min struct{}

// Name implements Aggregator.
func (Min) Name() string { return "min" }

// Aggregate implements Aggregator.
func (Min) Aggregate(ctx *Context, S *model.SourceSet, char string) float64 {
	lo, hi, ok := ctx.CharRange(char)
	if !ok || S.Len() == 0 {
		return 0
	}
	if floats.Eq(hi, lo) {
		return 1
	}
	best := 1.0
	S.ForEach(func(id int) {
		v := (value(ctx, id, char, lo) - lo) / (hi - lo)
		if v < best {
			best = v
		}
	})
	return best
}

// extremePartials carries the running min or max of the normalized
// characteristic over a base set; one type serves both Min and Max.
type extremePartials struct {
	char   string
	lo, hi float64
	ok     bool
	best   float64
	isMin  bool
}

// Partials implements DeltaAggregator.
func (Min) Partials(ctx *Context, S *model.SourceSet, char string) AggPartials {
	p := &extremePartials{char: char, best: 1, isMin: true}
	p.lo, p.hi, p.ok = ctx.CharRange(char)
	if !p.ok || floats.Eq(p.hi, p.lo) {
		return p
	}
	S.ForEach(func(id int) {
		if v := (value(ctx, id, char, p.lo) - p.lo) / (p.hi - p.lo); v < p.best {
			p.best = v
		}
	})
	return p
}

// EvalAdd implements AggPartials.
func (p *extremePartials) EvalAdd(ctx *Context, id int) float64 {
	if !p.ok {
		return 0
	}
	if floats.Eq(p.hi, p.lo) {
		return 1
	}
	v := (value(ctx, id, p.char, p.lo) - p.lo) / (p.hi - p.lo)
	if p.isMin == (v < p.best) {
		return v
	}
	return p.best
}

// Max scores a set by its strongest member — e.g. reputation when one
// trusted source is enough to anchor the integration.
type Max struct{}

// Name implements Aggregator.
func (Max) Name() string { return "max" }

// Aggregate implements Aggregator.
func (Max) Aggregate(ctx *Context, S *model.SourceSet, char string) float64 {
	lo, hi, ok := ctx.CharRange(char)
	if !ok || S.Len() == 0 {
		return 0
	}
	if floats.Eq(hi, lo) {
		return 1
	}
	best := 0.0
	S.ForEach(func(id int) {
		v := (value(ctx, id, char, lo) - lo) / (hi - lo)
		if v > best {
			best = v
		}
	})
	return best
}

// Partials implements DeltaAggregator.
func (Max) Partials(ctx *Context, S *model.SourceSet, char string) AggPartials {
	p := &extremePartials{char: char, best: 0}
	p.lo, p.hi, p.ok = ctx.CharRange(char)
	if !p.ok || floats.Eq(p.hi, p.lo) {
		return p
	}
	S.ForEach(func(id int) {
		if v := (value(ctx, id, char, p.lo) - p.lo) / (p.hi - p.lo); v > p.best {
			p.best = v
		}
	})
	return p
}

// AggregatorByName returns a predefined aggregator, or false for an
// unknown name.
func AggregatorByName(name string) (Aggregator, bool) {
	switch name {
	case "wsum":
		return WSum{}, true
	case "mean":
		return Mean{}, true
	case "min":
		return Min{}, true
	case "max":
		return Max{}, true
	}
	return nil, false
}

// Characteristic is a user-defined QEF over one named source
// characteristic (§5): it applies an aggregation function to the
// characteristic's values over S. Its QEF name is the characteristic name,
// so weights read naturally ("mttf": 0.15).
type Characteristic struct {
	// Char is the characteristic to aggregate, e.g. "mttf".
	Char string
	// Agg is the aggregation function; the paper's experiments use WSum.
	Agg Aggregator
}

// Name implements QEF.
func (c Characteristic) Name() string { return c.Char }

// Eval implements QEF.
func (c Characteristic) Eval(ctx *Context, S *model.SourceSet) float64 {
	return c.Agg.Aggregate(ctx, S, c.Char)
}
