package qef

import (
	"reflect"
	"testing"

	"ube/internal/model"
	"ube/internal/pcsa"
)

// mutateForRebase edits a universe in place the way engine churn does:
// drop one source, append another, change a cardinality and a
// characteristic.
func mutateForRebase(t *testing.T, u *model.Universe) *pcsa.Sketch {
	t.Helper()
	u.Sources = append(u.Sources[:1], u.Sources[2:]...)
	add := model.Source{
		Name:        "added",
		Attributes:  []string{"b"},
		Cardinality: 500,
		Characteristics: map[string]float64{
			"mttf": 250,
		},
	}
	sig := pcsa.MustNew(256, 7)
	for _, tp := range seqTuples(9000, 9500) {
		sig.AddUint64(tp)
	}
	add.Signature = sig
	u.Sources = append(u.Sources, add)
	u.Sources[0].Cardinality = 1234
	u.Sources[0].Characteristics = map[string]float64{"mttf": 10}
	for i := range u.Sources {
		u.Sources[i].ID = i
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	var coop []*pcsa.Sketch
	for i := range u.Sources {
		if sg := u.Sources[i].Signature; sg != nil {
			coop = append(coop, sg)
		}
	}
	un, err := pcsa.Union(coop...)
	if err != nil {
		t.Fatal(err)
	}
	return un
}

// rebaseFieldsEqual compares every precomputed Context field against a
// freshly built reference (same package, so unexported fields are
// directly visible; the scratch pools are compared by behavior).
func rebaseFieldsEqual(t *testing.T, got, want *Context) {
	t.Helper()
	if got.totalCard != want.totalCard {
		t.Errorf("totalCard %d, want %d", got.totalCard, want.totalCard)
	}
	//ube:float-exact Rebase promises bit-identity to NewContext
	if got.universeDistinct != want.universeDistinct {
		t.Errorf("universeDistinct %v, want %v", got.universeDistinct, want.universeDistinct)
	}
	if !reflect.DeepEqual(got.charRange, want.charRange) {
		t.Errorf("charRange %v, want %v", got.charRange, want.charRange)
	}
	if (got.scratch == nil) != (want.scratch == nil) {
		t.Fatalf("scratch nil-ness %v vs %v", got.scratch == nil, want.scratch == nil)
	}
	if got.scratch != nil {
		g := got.scratch.New().(*pcsa.Sketch)
		w := want.scratch.New().(*pcsa.Sketch)
		if g.NumMaps() != w.NumMaps() || g.Seed() != w.Seed() {
			t.Errorf("scratch prototype (%d,%d), want (%d,%d)", g.NumMaps(), g.Seed(), w.NumMaps(), w.Seed())
		}
	}
}

// TestRebaseMatchesNewContext mutates a context's universe in place and
// checks Rebase reproduces NewContext on the mutated universe
// bit-identically — both with a caller-maintained union sketch and with
// the rescan fallback.
func TestRebaseMatchesNewContext(t *testing.T) {
	build := func() *model.Universe {
		return buildUniverse(t, [][]uint64{
			seqTuples(0, 1000),
			seqTuples(500, 3000),
			seqTuples(2000, 6000),
		}, []bool{true, false, true})
	}
	for _, withUnion := range []bool{true, false} {
		u := build()
		ctx, err := NewContext(u)
		if err != nil {
			t.Fatal(err)
		}
		un := mutateForRebase(t, u)
		if !withUnion {
			un = nil
		}
		if err := ctx.Rebase(un); err != nil {
			t.Fatal(err)
		}
		want, err := NewContext(u)
		if err != nil {
			t.Fatal(err)
		}
		rebaseFieldsEqual(t, ctx, want)
		// The rebased context must evaluate exactly like the fresh one.
		S := setOf(u, 0, 2)
		for _, q := range []QEF{Card{}, Coverage{}, Redundancy{}} {
			//ube:float-exact Rebase promises bit-identity to NewContext
			if g, w := q.Eval(ctx, S), q.Eval(want, S); g != w {
				t.Errorf("withUnion=%v: %s eval %v, want %v", withUnion, q.Name(), g, w)
			}
		}
	}
}

// TestRebaseToUncooperative drains every cooperative source; the rebased
// context must drop its scratch pool and zero the distinct estimate,
// exactly like a fresh context on the sketch-free universe.
func TestRebaseToUncooperative(t *testing.T) {
	u := buildUniverse(t, [][]uint64{seqTuples(0, 100), seqTuples(0, 200)}, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u.Sources {
		u.Sources[i].Signature = nil
	}
	if err := ctx.Rebase(nil); err != nil {
		t.Fatal(err)
	}
	want, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	rebaseFieldsEqual(t, ctx, want)
}

// TestRebaseRejectsInvalid: a rebase onto a broken universe fails.
func TestRebaseRejectsInvalid(t *testing.T) {
	u := buildUniverse(t, [][]uint64{seqTuples(0, 100)}, nil)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	u.Sources[0].ID = 7
	if err := ctx.Rebase(nil); err == nil {
		t.Fatal("Rebase accepted a universe with non-dense IDs")
	}
}
