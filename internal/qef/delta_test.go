package qef

import (
	"math"
	"math/rand"
	"testing"

	"ube/internal/model"
)

// extraQEF is a delta-unaware caller-defined QEF; DeltaEval must fall
// back to evaluating it on the materialized set.
type extraQEF struct{}

func (extraQEF) Name() string { return "extra" }
func (extraQEF) Eval(ctx *Context, S *model.SourceSet) float64 {
	return float64(S.Len()) / float64(ctx.U.N())
}

// TestDeltaEvalMatchesComposite is the delta ≡ full differential property
// test: over random universes (mixed cooperation, all built-in
// aggregators, an extra QEF) and random (base, add) pairs, EvalAdd must
// agree with the full Composite evaluation of base ∪ {add} within 1e-12 —
// and bit-exactly on the integer/sketch-backed QEFs.
func TestDeltaEvalMatchesComposite(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(10)
		tuples := make([][]uint64, n)
		coop := make([]bool, n)
		for i := range tuples {
			from := r.Intn(5000)
			tuples[i] = seqTuples(from, from+100+r.Intn(3000))
			coop[i] = r.Intn(4) > 0
		}
		u := buildUniverse(t, tuples, coop)
		for i := range u.Sources {
			u.Sources[i].Characteristics = map[string]float64{}
			if r.Intn(5) > 0 {
				u.Sources[i].Characteristics["mttf"] = r.Float64() * 100
			}
		}
		ctx, err := NewContext(u)
		if err != nil {
			t.Fatal(err)
		}

		// A Characteristic QEF is named after its characteristic, so only
		// one aggregator fits per composite; rotate through all four.
		agg := []Aggregator{WSum{}, Mean{}, Min{}, Max{}}[trial%4]
		qefs := []QEF{Card{}, Coverage{}, Redundancy{}, Characteristic{Char: "mttf", Agg: agg}, extraQEF{}}
		w := Weights{"card": 0.3, "coverage": 0.25, "redundancy": 0.2, "mttf": 0.15, "extra": 0.1}
		if trial%5 == 0 {
			// Exercise the zero-weight skip path.
			w = Weights{"card": 0.4, "coverage": 0.35, "redundancy": 0.25, "mttf": 0, "extra": 0}
		}
		comp, err := NewComposite(qefs, w)
		if err != nil {
			t.Fatal(err)
		}
		de := NewDeltaEval(comp)

		for step := 0; step < 20; step++ {
			base := model.NewSourceSet(n)
			for id := 0; id < n; id++ {
				if r.Intn(2) == 0 {
					base.Add(id)
				}
			}
			add := r.Intn(n)
			if base.Has(add) {
				base.Remove(add)
			}
			S := base.Clone()
			S.Add(add)

			snap := de.Snapshot(ctx, base)
			got := de.EvalAdd(ctx, snap, add, S)
			want := comp.Eval(ctx, S)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d step %d agg %s: delta %v vs full %v (|Δ|=%g)",
					trial, step, agg.Name(), got, want, math.Abs(got-want))
			}
		}
	}
}

// TestDeltaEvalExactOnSketchQEFs pins the stronger guarantee for the
// integer- and sketch-backed QEFs: with only Card, Coverage and
// Redundancy weighted, the incremental path is bit-identical to the full
// path (the partial sums are integers and OR-ing sketches is
// order-independent).
func TestDeltaEvalExactOnSketchQEFs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 8
	tuples := make([][]uint64, n)
	coop := make([]bool, n)
	for i := range tuples {
		from := r.Intn(4000)
		tuples[i] = seqTuples(from, from+500+r.Intn(2000))
		coop[i] = i != 3 // one uncooperative source
	}
	u := buildUniverse(t, tuples, coop)
	ctx, err := NewContext(u)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewComposite([]QEF{Card{}, Coverage{}, Redundancy{}},
		Weights{"card": 0.4, "coverage": 0.3, "redundancy": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	de := NewDeltaEval(comp)
	for step := 0; step < 200; step++ {
		base := model.NewSourceSet(n)
		for id := 0; id < n; id++ {
			if r.Intn(2) == 0 {
				base.Add(id)
			}
		}
		add := r.Intn(n)
		base.Remove(add)
		S := base.Clone()
		S.Add(add)
		snap := de.Snapshot(ctx, base)
		if got, want := de.EvalAdd(ctx, snap, add, S), comp.Eval(ctx, S); got != want {
			t.Fatalf("step %d: delta %v != full %v (base %v add %d)", step, got, want, base.Elements(), add)
		}
	}
}
