package schemaio

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"ube/internal/model"
)

// richProblemDoc exercises every ProblemDoc field. Collections are
// non-empty or nil — the binary codec's canonical form — so DeepEqual
// round-trip comparisons are exact.
func richProblemDoc() *ProblemDoc {
	return &ProblemDoc{
		MaxSources: 8,
		Theta:      0.65,
		Beta:       3,
		Constraints: model.Constraints{
			Sources: []int{2, 5, 9},
			GAs: []model.GA{
				{{Source: 2, Attr: 0}, {Source: 5, Attr: 1}},
				{{Source: 9, Attr: 3}},
			},
			Exclude: []int{1},
		},
		Weights:         map[string]float64{"card": 0.5, "match": 2, "mttf": 0.25},
		Characteristics: map[string]string{"mttf": "mean"},
		Optimizer:       "tabu",
		Seed:            42,
		MaxEvals:        400,
		Workers:         1,
		InitialSources:  []int{2, 5},
	}
}

func richSolutionDoc() *SolutionDoc {
	return &SolutionDoc{
		N:        40,
		Sources:  []int{2, 5, 9},
		Quality:  0.8731,
		Feasible: true,
		Breakdown: map[string]float64{
			"card": 0.9, "coverage": 0.7, "match": 0.95,
		},
		Evals: 400,
		Schema: &model.MediatedSchema{GAs: []model.GA{
			{{Source: 2, Attr: 0}, {Source: 5, Attr: 1}},
		}},
		GAQuality:      []float64{0.95},
		FromConstraint: []bool{true},
		MatchQuality:   0.95,
		MatchValid:     true,
		CacheHits:      10,
		CacheMisses:    3,
		CacheEvictions: 1,
		ElapsedNS:      123456789,
	}
}

// TestBinaryRoundTrip pins the codec's core contract for every frame
// type: decode(encode(doc)) == doc, and encode(decode(b)) == b — the
// canonical fixed point.
func TestBinaryRoundTrip(t *testing.T) {
	pd := richProblemDoc()
	sd := richSolutionDoc()
	it := &IterationDoc{Problem: *pd, Solution: *sd}
	hist := []IterationDoc{*it, *it}
	sr := &SolveResultDoc{Session: "g17", Iteration: 2, Solution: *sd}
	pr := &ProgressDoc{Iteration: 1, Evals: 250, BestQuality: 0.81, Feasible: true}

	cases := []struct {
		name   string
		encode func() ([]byte, error)
		decode func([]byte) (any, error)
		want   any
	}{
		{"problem", func() ([]byte, error) { return EncodeBinaryProblem(pd) },
			func(b []byte) (any, error) { return DecodeBinaryProblem(b) }, pd},
		{"solution", func() ([]byte, error) { return EncodeBinarySolution(sd) },
			func(b []byte) (any, error) { return DecodeBinarySolution(b) }, sd},
		{"iteration", func() ([]byte, error) { return EncodeBinaryIteration(it) },
			func(b []byte) (any, error) { return DecodeBinaryIteration(b) }, it},
		{"history", func() ([]byte, error) { return EncodeBinaryHistory(hist) },
			func(b []byte) (any, error) { return DecodeBinaryHistory(b) }, hist},
		{"solveResult", func() ([]byte, error) { return EncodeBinarySolveResult(sr) },
			func(b []byte) (any, error) { return DecodeBinarySolveResult(b) }, sr},
		{"progress", func() ([]byte, error) { return EncodeBinaryProgress(pr) },
			func(b []byte) (any, error) { return DecodeBinaryProgress(b) }, pr},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := tc.encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := tc.decode(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			want := tc.want
			if reflect.ValueOf(want).Kind() == reflect.Pointer && reflect.TypeOf(got).Kind() != reflect.Pointer {
				want = reflect.ValueOf(want).Elem().Interface()
			}
			if !reflect.DeepEqual(got, want) && !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("round trip diverged:\ngot  %#v\nwant %#v", got, tc.want)
			}
			// Canonical fixed point: re-encoding the decoded doc must
			// reproduce the frame byte for byte.
			b2, err := reencode(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatalf("re-encode is not a fixed point:\n%x\n%x", b, b2)
			}
		})
	}
}

// reencode dispatches on the decoded doc type.
func reencode(doc any) ([]byte, error) {
	switch d := doc.(type) {
	case *ProblemDoc:
		return EncodeBinaryProblem(d)
	case *SolutionDoc:
		return EncodeBinarySolution(d)
	case *IterationDoc:
		return EncodeBinaryIteration(d)
	case []IterationDoc:
		return EncodeBinaryHistory(d)
	case *SolveResultDoc:
		return EncodeBinarySolveResult(d)
	case *ProgressDoc:
		return EncodeBinaryProgress(d)
	}
	panic("unknown doc type")
}

// TestBinaryMatchesJSON proves JSON stays the reference: a doc pushed
// through a JSON round trip binary-encodes to the identical frame, so
// the two formats carry exactly the same information.
func TestBinaryMatchesJSON(t *testing.T) {
	pd := richProblemDoc()
	raw, err := json.Marshal(pd)
	if err != nil {
		t.Fatal(err)
	}
	var back ProblemDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	a, err := EncodeBinaryProblem(pd)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBinaryProblem(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("JSON round trip changed the binary frame")
	}

	sd := richSolutionDoc()
	raw, err = json.Marshal(sd)
	if err != nil {
		t.Fatal(err)
	}
	var sback SolutionDoc
	if err := json.Unmarshal(raw, &sback); err != nil {
		t.Fatal(err)
	}
	if a, err = EncodeBinarySolution(sd); err != nil {
		t.Fatal(err)
	}
	if b, err = EncodeBinarySolution(&sback); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("JSON round trip changed the solution frame")
	}
}

// TestBinaryTruncationNeverPanics decodes every prefix of every valid
// frame: each must error (or, for the empty suffix case, succeed only
// at full length), never panic.
func TestBinaryTruncationNeverPanics(t *testing.T) {
	pd := richProblemDoc()
	sd := richSolutionDoc()
	frames := map[string][]byte{}
	var err error
	if frames["problem"], err = EncodeBinaryProblem(pd); err != nil {
		t.Fatal(err)
	}
	if frames["solution"], err = EncodeBinarySolution(sd); err != nil {
		t.Fatal(err)
	}
	if frames["history"], err = EncodeBinaryHistory([]IterationDoc{{Problem: *pd, Solution: *sd}}); err != nil {
		t.Fatal(err)
	}
	if frames["progress"], err = EncodeBinaryProgress(&ProgressDoc{Evals: 10, BestQuality: 0.5}); err != nil {
		t.Fatal(err)
	}
	for name, frame := range frames {
		for n := 0; n < len(frame); n++ {
			prefix := frame[:n]
			if _, err := DecodeBinaryProblem(prefix); err == nil && name == "problem" {
				t.Fatalf("%s prefix of %d bytes decoded", name, n)
			}
			if _, err := DecodeBinarySolution(prefix); err == nil && name == "solution" {
				t.Fatalf("%s prefix of %d bytes decoded", name, n)
			}
			if _, err := DecodeBinaryHistory(prefix); err == nil && name == "history" {
				t.Fatalf("%s prefix of %d bytes decoded", name, n)
			}
			if _, err := DecodeBinaryProgress(prefix); err == nil && name == "progress" {
				t.Fatalf("%s prefix of %d bytes decoded", name, n)
			}
		}
	}
}

func TestBinaryRejectsHostileFrames(t *testing.T) {
	valid, err := EncodeBinaryProgress(&ProgressDoc{Iteration: 1, Evals: 2, BestQuality: 0.5, Feasible: true})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] = 'X'
		if _, err := DecodeBinaryProgress(b); err == nil {
			t.Error("frame with wrong magic decoded")
		}
	})
	t.Run("wrong type byte", func(t *testing.T) {
		if _, err := DecodeBinarySolution(valid); err == nil {
			t.Error("progress frame decoded as a solution")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		b := append(append([]byte(nil), valid...), 0x00)
		if _, err := DecodeBinaryProgress(b); err == nil {
			t.Error("frame with trailing bytes decoded")
		}
	})
	t.Run("NaN weight refuses to encode", func(t *testing.T) {
		pd := richProblemDoc()
		pd.Weights = map[string]float64{"match": math.NaN()}
		if _, err := EncodeBinaryProblem(pd); err == nil {
			t.Error("NaN weight encoded")
		}
	})
	t.Run("NaN weight refuses to decode", func(t *testing.T) {
		// Hand-build a progress frame whose quality float is NaN.
		b := append([]byte(nil), valid...)
		nan := math.Float64bits(math.NaN())
		// Payload: varint(1)=0x02, varint(2)=0x04, then 8 float bytes.
		for i := 0; i < 8; i++ {
			b[5+2+i] = byte(nan >> (8 * i))
		}
		if _, err := DecodeBinaryProgress(b); err == nil {
			t.Error("NaN float decoded")
		}
	})
	t.Run("oversized list count", func(t *testing.T) {
		w := newFrame(binaryTypeSolution)
		w.vint(10)                             // N
		w.uvarint(uint64(decodeListLimit) + 1) // hostile sources count
		b, err := w.finish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBinarySolution(b); err == nil {
			t.Error("oversized count decoded")
		}
	})
	t.Run("non-minimal varint", func(t *testing.T) {
		w := newFrame(binaryTypeProgress)
		w.buf = append(w.buf, 0x82, 0x00) // non-minimal encoding of 2
		w.vint(2)
		w.f64(0.5)
		w.bool(true)
		b, err := w.finish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBinaryProgress(b); err == nil {
			t.Error("non-minimal varint decoded")
		}
	})
	t.Run("bad bool byte", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(b)-1] = 0x07
		if _, err := DecodeBinaryProgress(b); err == nil {
			t.Error("bool byte 0x07 decoded")
		}
	})
	t.Run("unsorted map keys", func(t *testing.T) {
		w := newFrame(binaryTypeProblem)
		w.vint(8)    // maxSources
		w.f64(0.5)   // theta
		w.vint(0)    // beta
		w.uvarint(0) // constraints.sources
		w.uvarint(0) // constraints.gas
		w.uvarint(0) // constraints.exclude
		w.uvarint(2) // weights: two entries out of order
		w.string("match")
		w.f64(1)
		w.string("card")
		w.f64(1)
		w.uvarint(0) // characteristics
		w.string("") // optimizer
		w.varint(0)  // seed
		w.vint(0)    // maxEvals
		w.vint(0)    // workers
		w.uvarint(0) // initialSources
		b, err := w.finish()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeBinaryProblem(b); err == nil {
			t.Error("unsorted weight keys decoded")
		}
	})
}

// TestBinaryDocDecodeMatchesJSONPath proves a binary-decoded doc feeds
// the same Decode() trust boundary as JSON: the engine problem built
// from a binary frame equals the one built from the JSON document.
func TestBinaryDocDecodeMatchesJSONPath(t *testing.T) {
	pd := richProblemDoc()
	frame, err := EncodeBinaryProblem(pd)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinaryProblem(frame)
	if err != nil {
		t.Fatal(err)
	}
	a, err := pd.Decode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromBin.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Constraints, b.Constraints) || a.Seed != b.Seed || a.Theta != b.Theta {
		t.Error("binary and JSON paths decode to different problems")
	}
}
