package schemaio

import (
	"encoding/json"
	"reflect"
	"testing"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
	"ube/internal/synth"
)

func testUniverse(t *testing.T) *model.Universe {
	t.Helper()
	u, _, err := synth.Generate(synth.QuickConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestProblemJSONRoundTripResolve is the marshal→unmarshal→re-solve
// equivalence test: a problem that survives the JSON round trip must
// drive a fresh engine to the bit-identical solution the original
// produced.
func TestProblemJSONRoundTripResolve(t *testing.T) {
	u := testUniverse(t)
	p := engine.DefaultProblem()
	p.MaxSources = 6
	p.MaxEvals = 1200
	p.Theta = 0.7
	p.Constraints.Sources = []int{2}
	p.Constraints.Exclude = []int{5}
	p.Optimizer = search.NewSLS()
	p.Workers = 2

	e1, err := engine.New(u)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e1.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}

	doc, err := EncodeProblem(&p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back ProblemDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	p2, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}

	e2, err := engine.New(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.Solve(&p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Sources, got.Sources) {
		t.Errorf("re-solve selected %v; original selected %v", got.Sources, want.Sources)
	}
	if want.Quality != got.Quality {
		t.Errorf("re-solve quality %v; original %v", got.Quality, want.Quality)
	}
	if want.Evals != got.Evals {
		t.Errorf("re-solve evals %d; original %d", got.Evals, want.Evals)
	}
	if !reflect.DeepEqual(want.Breakdown, got.Breakdown) {
		t.Errorf("re-solve breakdown %v; original %v", got.Breakdown, want.Breakdown)
	}
	if !reflect.DeepEqual(want.Schema, got.Schema) {
		t.Error("re-solve schema diverges from original")
	}
}

// TestProblemJSONFieldFidelity checks the decoded problem preserves every
// declarative field verbatim — including zero-adjacent values the spec
// format would reinterpret as "unset".
func TestProblemJSONFieldFidelity(t *testing.T) {
	p := engine.DefaultProblem()
	p.MaxSources = 9
	p.Theta = 0.001 // spec.ProblemSpec would misread 0-ish values; ProblemDoc must not
	p.Beta = 3
	p.Seed = 42
	p.MaxEvals = 77
	p.Workers = 4
	p.InitialSources = []int{1, 2, 3}
	p.Constraints.GAs = []model.GA{model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 1, Attr: 1})}
	p.Characteristics = map[string]qef.Aggregator{"mttf": qef.Min{}}
	p.Optimizer = search.NewAnneal()

	doc, err := EncodeProblem(&p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back ProblemDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	p2, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if p2.MaxSources != 9 || p2.Theta != 0.001 || p2.Beta != 3 || p2.Seed != 42 || p2.MaxEvals != 77 || p2.Workers != 4 {
		t.Errorf("scalar fields diverge: %+v", p2)
	}
	if !reflect.DeepEqual(p2.InitialSources, p.InitialSources) {
		t.Errorf("initial sources %v != %v", p2.InitialSources, p.InitialSources)
	}
	if !reflect.DeepEqual(p2.Constraints, p.Constraints) {
		t.Errorf("constraints %+v != %+v", p2.Constraints, p.Constraints)
	}
	if !reflect.DeepEqual(p2.Weights, p.Weights) {
		t.Errorf("weights %v != %v", p2.Weights, p.Weights)
	}
	if p2.Characteristics["mttf"].Name() != "min" {
		t.Errorf("aggregator decoded to %q", p2.Characteristics["mttf"].Name())
	}
	if p2.Optimizer == nil || p2.Optimizer.Name() != "anneal" {
		t.Errorf("optimizer decoded to %v", p2.Optimizer)
	}
}

// TestProblemJSONRejectsExtraQEFs verifies the lossy case errors instead
// of silently dropping the caller's QEF.
func TestProblemJSONRejectsExtraQEFs(t *testing.T) {
	p := engine.DefaultProblem()
	p.ExtraQEFs = []qef.QEF{qef.Card{}}
	if _, err := EncodeProblem(&p); err == nil {
		t.Fatal("ExtraQEFs encoded without error")
	}
}

// TestSolutionJSONRoundTrip solves once and pushes the solution (and the
// whole iteration) through the document form and back.
func TestSolutionJSONRoundTrip(t *testing.T) {
	u := testUniverse(t)
	e, err := engine.New(u)
	if err != nil {
		t.Fatal(err)
	}
	s := engine.NewSession(e, func() engine.Problem {
		p := engine.DefaultProblem()
		p.MaxSources = 6
		p.MaxEvals = 800
		return p
	}())
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	sol := s.Last()

	data, err := json.Marshal(EncodeSolution(sol))
	if err != nil {
		t.Fatal(err)
	}
	var doc SolutionDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	back, err := doc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Sources, sol.Sources) {
		t.Errorf("sources %v != %v", back.Sources, sol.Sources)
	}
	if back.Quality != sol.Quality || back.Feasible != sol.Feasible || back.Evals != sol.Evals {
		t.Errorf("scalars diverge: %+v vs %+v", back, sol)
	}
	if !back.Set.Equal(sol.Set) {
		t.Error("set diverges after round trip")
	}
	if !reflect.DeepEqual(back.Schema, sol.Schema) {
		t.Error("schema diverges after round trip")
	}
	if !reflect.DeepEqual(back.Breakdown, sol.Breakdown) {
		t.Error("breakdown diverges after round trip")
	}
	if !reflect.DeepEqual(back.Match.GAQuality, sol.Match.GAQuality) {
		t.Error("per-GA quality diverges after round trip")
	}
	if back.Match.Quality != sol.Match.Quality || back.Match.Valid != sol.Match.Valid {
		t.Error("match summary diverges after round trip")
	}
	if back.MatchCache != sol.MatchCache {
		t.Errorf("cache stats %+v != %+v", back.MatchCache, sol.MatchCache)
	}
	if back.Elapsed != sol.Elapsed {
		t.Errorf("elapsed %v != %v", back.Elapsed, sol.Elapsed)
	}

	// Whole-history round trip.
	docs, err := EncodeHistory(s.History())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("encoded %d iterations; want 2", len(docs))
	}
	data, err = json.Marshal(docs)
	if err != nil {
		t.Fatal(err)
	}
	var backDocs []IterationDoc
	if err := json.Unmarshal(data, &backDocs); err != nil {
		t.Fatal(err)
	}
	it, err := backDocs[1].Decode()
	if err != nil {
		t.Fatal(err)
	}
	if it.Problem.Seed != s.History()[1].Problem.Seed {
		t.Errorf("iteration problem seed %d != %d", it.Problem.Seed, s.History()[1].Problem.Seed)
	}
	if !reflect.DeepEqual(it.Solution.Sources, sol.Sources) {
		t.Error("iteration solution diverges after round trip")
	}
}
