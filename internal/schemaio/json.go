package schemaio

// JSON round-trip encoding for engine problems, solutions and session
// iterations — the wire format of the ube-serve HTTP API and a durable
// form for iteration histories. The docs are lossless for everything a
// service can express: optimizers and characteristic aggregators are
// referenced by name (a custom-parameterized optimizer decodes to that
// algorithm's package defaults), and caller-defined ExtraQEFs — Go
// values with no declarative form — are rejected at encode time rather
// than silently dropped.

import (
	"fmt"
	"math"
	"time"

	"ube/internal/cluster"
	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/qef"
	"ube/internal/search"
)

// decodeListLimit caps every list a service request can carry
// (constraints, GA members, warm-start sources): a universe has at most
// thousands of sources, so anything past this is a hostile or corrupt
// document, rejected before it allocates.
const decodeListLimit = 1 << 16

// decodeUniverseLimit caps the declared universe size when rebuilding a
// solution's source bitset; past it the allocation alone is an attack.
const decodeUniverseLimit = 1 << 24

// ProblemDoc is the JSON form of engine.Problem. Unlike spec.ProblemSpec
// (a human-authored input format with defaulting rules), ProblemDoc is an
// exact machine round-trip: every field is stored verbatim, zero values
// included.
type ProblemDoc struct {
	MaxSources      int               `json:"maxSources"`
	Theta           float64           `json:"theta"`
	Beta            int               `json:"beta"`
	Constraints     model.Constraints `json:"constraints"`
	Weights         qef.Weights       `json:"weights,omitempty"`
	Characteristics map[string]string `json:"characteristics,omitempty"`
	Optimizer       string            `json:"optimizer,omitempty"`
	Seed            int64             `json:"seed"`
	MaxEvals        int               `json:"maxEvals,omitempty"`
	Workers         int               `json:"workers,omitempty"`
	InitialSources  []int             `json:"initialSources,omitempty"`
}

// EncodeProblem renders a problem as its JSON document form. It fails on
// problems carrying ExtraQEFs (arbitrary Go code has no JSON form) or a
// characteristic aggregator whose name AggregatorByName cannot resolve
// back.
func EncodeProblem(p *engine.Problem) (*ProblemDoc, error) {
	if len(p.ExtraQEFs) > 0 {
		return nil, fmt.Errorf("schemaio: problem carries %d ExtraQEFs, which have no JSON form", len(p.ExtraQEFs))
	}
	d := &ProblemDoc{
		MaxSources:     p.MaxSources,
		Theta:          p.Theta,
		Beta:           p.Beta,
		Constraints:    *p.Constraints.Clone(),
		Weights:        p.Weights.Clone(),
		Seed:           p.Seed,
		MaxEvals:       p.MaxEvals,
		Workers:        p.Workers,
		InitialSources: append([]int(nil), p.InitialSources...),
	}
	if p.Characteristics != nil {
		d.Characteristics = make(map[string]string, len(p.Characteristics))
		for char, agg := range p.Characteristics {
			if agg == nil {
				return nil, fmt.Errorf("schemaio: nil aggregator for characteristic %q", char)
			}
			name := agg.Name()
			if _, ok := qef.AggregatorByName(name); !ok {
				return nil, fmt.Errorf("schemaio: aggregator %q for characteristic %q is not resolvable by name", name, char)
			}
			d.Characteristics[char] = name
		}
	}
	if p.Optimizer != nil {
		name := p.Optimizer.Name()
		if _, ok := search.ByName(name); !ok {
			return nil, fmt.Errorf("schemaio: optimizer %q is not resolvable by name", name)
		}
		d.Optimizer = name
	}
	return d, nil
}

// Decode resolves the document back into an engine problem. Optimizers
// and aggregators are reconstructed by name with package defaults; an
// empty optimizer name decodes to nil (the engine's tabu default).
//
// Decode is the service's trust boundary for problem documents, so it
// rejects what engine validation cannot be relied on to catch: NaN/Inf
// numerics (whose comparisons are all false, so range checks pass them)
// and absurdly oversized constraint or warm-start lists.
func (d *ProblemDoc) Decode() (engine.Problem, error) {
	if !isFinite(d.Theta) {
		return engine.Problem{}, fmt.Errorf("schemaio: theta %v is not a finite number", d.Theta)
	}
	for name, w := range d.Weights {
		if !isFinite(w) {
			return engine.Problem{}, fmt.Errorf("schemaio: weight %q = %v is not a finite number", name, w)
		}
	}
	for _, l := range []struct {
		name string
		n    int
	}{
		{"constraints.sources", len(d.Constraints.Sources)},
		{"constraints.gas", len(d.Constraints.GAs)},
		{"constraints.exclude", len(d.Constraints.Exclude)},
		{"initialSources", len(d.InitialSources)},
	} {
		if l.n > decodeListLimit {
			return engine.Problem{}, fmt.Errorf("schemaio: %s carries %d entries, limit %d", l.name, l.n, decodeListLimit)
		}
	}
	for i, ga := range d.Constraints.GAs {
		if len(ga) > decodeListLimit {
			return engine.Problem{}, fmt.Errorf("schemaio: GA constraint %d carries %d attributes, limit %d", i, len(ga), decodeListLimit)
		}
	}
	p := engine.Problem{
		MaxSources:     d.MaxSources,
		Theta:          d.Theta,
		Beta:           d.Beta,
		Constraints:    *d.Constraints.Clone(),
		Weights:        d.Weights.Clone(),
		Seed:           d.Seed,
		MaxEvals:       d.MaxEvals,
		Workers:        d.Workers,
		InitialSources: append([]int(nil), d.InitialSources...),
	}
	if d.Characteristics != nil {
		p.Characteristics = make(map[string]qef.Aggregator, len(d.Characteristics))
		for char, name := range d.Characteristics {
			agg, ok := qef.AggregatorByName(name)
			if !ok {
				return p, fmt.Errorf("schemaio: unknown aggregator %q for characteristic %q", name, char)
			}
			p.Characteristics[char] = agg
		}
	}
	if d.Optimizer != "" {
		opt, ok := search.ByName(d.Optimizer)
		if !ok {
			return p, fmt.Errorf("schemaio: unknown optimizer %q", d.Optimizer)
		}
		p.Optimizer = opt
	}
	return p, nil
}

// SolutionDoc is the JSON form of engine.Solution. The chosen set is
// stored as the member list plus the universe size so the bitset can be
// rebuilt; the clustering detail (per-GA quality, constraint provenance)
// is stored alongside the schema.
type SolutionDoc struct {
	N              int                   `json:"n"`
	Sources        []int                 `json:"sources"`
	Quality        float64               `json:"quality"`
	Feasible       bool                  `json:"feasible"`
	Breakdown      map[string]float64    `json:"breakdown,omitempty"`
	Evals          int                   `json:"evals"`
	Schema         *model.MediatedSchema `json:"schema,omitempty"`
	GAQuality      []float64             `json:"gaQuality,omitempty"`
	FromConstraint []bool                `json:"fromConstraint,omitempty"`
	MatchQuality   float64               `json:"matchQuality"`
	MatchValid     bool                  `json:"matchValid"`
	CacheHits      int64                 `json:"cacheHits,omitempty"`
	CacheMisses    int64                 `json:"cacheMisses,omitempty"`
	CacheEvictions int64                 `json:"cacheEvictions,omitempty"`
	//ube:operational timing metadata; load/chaos replay zeroes it before comparing
	ElapsedNS int64 `json:"elapsedNs,omitempty"`
}

// EncodeSolution renders a solution as its JSON document form.
func EncodeSolution(sol *engine.Solution) *SolutionDoc {
	d := &SolutionDoc{
		Sources:        append([]int(nil), sol.Sources...),
		Quality:        sol.Quality,
		Feasible:       sol.Feasible,
		Breakdown:      cloneFloatMap(sol.Breakdown),
		Evals:          sol.Evals,
		GAQuality:      append([]float64(nil), sol.Match.GAQuality...),
		FromConstraint: append([]bool(nil), sol.Match.FromConstraint...),
		MatchQuality:   sol.Match.Quality,
		MatchValid:     sol.Match.Valid,
		CacheHits:      sol.MatchCache.Hits,
		CacheMisses:    sol.MatchCache.Misses,
		CacheEvictions: sol.MatchCache.Evictions,
		ElapsedNS:      sol.Elapsed.Nanoseconds(),
	}
	if sol.Set != nil {
		d.N = sol.Set.Cap()
	}
	if sol.Schema != nil {
		d.Schema = sol.Schema.Clone()
	}
	return d
}

// Decode reconstructs the solution. The Set bitset is rebuilt from the
// member list over [0, N).
func (d *SolutionDoc) Decode() (*engine.Solution, error) {
	sol := &engine.Solution{
		Sources:   append([]int(nil), d.Sources...),
		Quality:   d.Quality,
		Feasible:  d.Feasible,
		Breakdown: cloneFloatMap(d.Breakdown),
		Evals:     d.Evals,
		Match: cluster.Result{
			Quality:        d.MatchQuality,
			GAQuality:      append([]float64(nil), d.GAQuality...),
			FromConstraint: append([]bool(nil), d.FromConstraint...),
			Valid:          d.MatchValid,
		},
		MatchCache: engine.CacheStats{Hits: d.CacheHits, Misses: d.CacheMisses, Evictions: d.CacheEvictions},
		Elapsed:    time.Duration(d.ElapsedNS),
	}
	if d.N < 0 || d.N > decodeUniverseLimit {
		return nil, fmt.Errorf("schemaio: solution universe size %d outside [0,%d]", d.N, decodeUniverseLimit)
	}
	set := model.NewSourceSet(d.N)
	for _, id := range d.Sources {
		if id < 0 || id >= d.N {
			return nil, fmt.Errorf("schemaio: solution source %d out of range [0,%d)", id, d.N)
		}
		set.Add(id)
	}
	sol.Set = set
	if d.Schema != nil {
		sol.Schema = d.Schema.Clone()
		sol.Match.Schema = sol.Schema
	}
	return sol, nil
}

// IterationDoc is the JSON form of one session history entry.
type IterationDoc struct {
	Problem  ProblemDoc  `json:"problem"`
	Solution SolutionDoc `json:"solution"`
}

// EncodeIteration renders one history entry.
func EncodeIteration(it *engine.Iteration) (*IterationDoc, error) {
	pd, err := EncodeProblem(&it.Problem)
	if err != nil {
		return nil, err
	}
	if it.Solution == nil {
		return nil, fmt.Errorf("schemaio: iteration has no solution")
	}
	return &IterationDoc{Problem: *pd, Solution: *EncodeSolution(it.Solution)}, nil
}

// Decode reconstructs the history entry.
func (d *IterationDoc) Decode() (engine.Iteration, error) {
	p, err := d.Problem.Decode()
	if err != nil {
		return engine.Iteration{}, err
	}
	sol, err := d.Solution.Decode()
	if err != nil {
		return engine.Iteration{}, err
	}
	return engine.Iteration{Problem: p, Solution: sol}, nil
}

// EncodeHistory renders a whole session history, oldest first.
func EncodeHistory(history []engine.Iteration) ([]IterationDoc, error) {
	docs := make([]IterationDoc, 0, len(history))
	for i := range history {
		d, err := EncodeIteration(&history[i])
		if err != nil {
			return nil, fmt.Errorf("schemaio: iteration %d: %w", i, err)
		}
		docs = append(docs, *d)
	}
	return docs, nil
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func cloneFloatMap(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
