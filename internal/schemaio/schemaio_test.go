package schemaio

import (
	"strings"
	"testing"
)

// figure1 is the paper's Figure 1 sample, verbatim.
const figure1 = `tonyawards.com: {keywords}
whatsonstage.com: {your town}
aceticket.com: {state, city, event, venue}
canadiantheatre.com: {phrase, search term}
londontheatre.co.uk: {type,keyword}
mime.info.com: {search for}
pbs.org: {program title, date, author, actor, director, keyword}
pa.msu.edu: {keyword}
wstonline.org: {keyword, after date, before date}
officiallondontheatre.co.uk: {keyword, after date, before date}
lastminute.com: {event name, event type, location, date, radius}
`

func TestParseFigure1(t *testing.T) {
	u, err := Parse(strings.NewReader(figure1))
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 11 {
		t.Fatalf("parsed %d sources, want 11", u.N())
	}
	if u.Sources[2].Name != "aceticket.com" {
		t.Errorf("source 2 name %q", u.Sources[2].Name)
	}
	want := []string{"state", "city", "event", "venue"}
	got := u.Sources[2].Attributes
	if len(got) != len(want) {
		t.Fatalf("aceticket attrs %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("attr %d = %q, want %q", i, got[i], want[i])
		}
	}
	// "type,keyword" without spaces still splits.
	if len(u.Sources[4].Attributes) != 2 {
		t.Errorf("londontheatre attrs %v", u.Sources[4].Attributes)
	}
	// IDs dense, universe valid, all uncooperative.
	for i := range u.Sources {
		if u.Sources[i].ID != i {
			t.Errorf("source %d has ID %d", i, u.Sources[i].ID)
		}
		if u.Sources[i].Cooperative() {
			t.Errorf("parsed source %d should have no signature", i)
		}
	}
}

func TestParseMetadata(t *testing.T) {
	in := `shop.example: {title, price} | cardinality=12000 mttf=90.5 fee=2
free.example: {title}
`
	u, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := u.Sources[0]
	if s.Cardinality != 12000 {
		t.Errorf("cardinality = %d", s.Cardinality)
	}
	if s.Characteristics["mttf"] != 90.5 || s.Characteristics["fee"] != 2 {
		t.Errorf("characteristics = %v", s.Characteristics)
	}
	if u.Sources[1].Cardinality != 0 || u.Sources[1].Characteristics != nil {
		t.Error("metadata leaked onto second source")
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	in := `
# hidden-web sources for "theater"
a.example: {x}

# another
b.example: {y}
`
	u, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 2 {
		t.Errorf("N = %d", u.N())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no colon":             "aceticket.com {a, b}\n",
		"empty name":           ": {a}\n",
		"no braces":            "x.com: a, b\n",
		"unclosed brace":       "x.com: {a, b\n",
		"empty attribute":      "x.com: {a, , b}\n",
		"no attributes":        "x.com: {}\n",
		"bad metadata pair":    "x.com: {a} | cardinality\n",
		"bad metadata value":   "x.com: {a} | mttf=high\n",
		"negative char":        "x.com: {a} | mttf=-1\n",
		"fractional card":      "x.com: {a} | cardinality=1.5\n",
		"negative cardinality": "x.com: {a} | cardinality=-2\n",
		"duplicate source":     "x.com: {a}\nx.com: {b}\n",
		"empty input":          "# only a comment\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	in := "ok.example: {a}\nbroken line\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name line 2, got %v", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	in := `alpha.example: {title, author, isbn} | cardinality=500 fee=1.5 mttf=120
beta.example: {book title, writer}
`
	u, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, u); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparsing own output: %v\n%s", err, buf.String())
	}
	if back.N() != u.N() {
		t.Fatalf("round trip changed source count")
	}
	for i := range u.Sources {
		a, b := &u.Sources[i], &back.Sources[i]
		if a.Name != b.Name || a.Cardinality != b.Cardinality {
			t.Errorf("source %d changed: %+v vs %+v", i, a, b)
		}
		if len(a.Attributes) != len(b.Attributes) {
			t.Errorf("source %d attrs changed", i)
		}
		for k, v := range a.Characteristics {
			if b.Characteristics[k] != v {
				t.Errorf("source %d characteristic %s changed", i, k)
			}
		}
	}
}

func TestWriteFigure1Shape(t *testing.T) {
	u, err := Parse(strings.NewReader(figure1))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, u); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aceticket.com: {state, city, event, venue}") {
		t.Errorf("output misses canonical line:\n%s", out)
	}
	if strings.Contains(out, "|") {
		t.Errorf("no metadata should be emitted for bare sources:\n%s", out)
	}
}
