package schemaio

// Compact length-prefixed binary frames for the hot solve/progress wire
// paths (DESIGN.md §15). JSON stays the default and the wire-compat
// reference: every binary frame carries exactly the fields of the JSON
// doc it mirrors, in a fixed order, so the two formats are loss-free
// views of the same document.
//
// The encoding is canonical: minimal varints, sorted map keys, nil and
// empty collections unified, one legal byte for each bool, finite
// floats only. Decoding rejects anything non-canonical, which gives the
// codec a fixed point — for every frame b that decodes, re-encoding the
// result reproduces b byte for byte. That property is what the fuzz
// targets pin and what lets the router treat frames as opaque,
// re-transmittable bytes.
//
// Frame layout: 4-byte magic "UBB1", one type byte, then the payload.
// Trailing bytes after the payload are an error, so frames are
// self-delimiting when their length is known (HTTP bodies, SSE data
// lines after base64).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"unicode/utf8"

	"ube/internal/model"
)

// BinaryContentType is the negotiated media type for binary frames.
// Clients opt in per request with "Accept: application/x-ube-binary";
// everything else gets JSON.
const BinaryContentType = "application/x-ube-binary"

// binaryMagic opens every frame. The version is part of the magic: a
// future incompatible layout becomes "UBB2", and old decoders reject it
// at byte 3 instead of misparsing.
var binaryMagic = [4]byte{'U', 'B', 'B', '1'}

// Frame type bytes. The catalog is closed; unknown types are rejected.
const (
	binaryTypeProblem     = 0x01
	binaryTypeSolution    = 0x02
	binaryTypeIteration   = 0x03
	binaryTypeHistory     = 0x04
	binaryTypeSolveResult = 0x05
	binaryTypeProgress    = 0x06
)

// maxBinaryString caps every encoded string (QEF names, characteristic
// names, session IDs); anything longer is hostile or corrupt.
const maxBinaryString = 1 << 12

var errBinaryTruncated = errors.New("schemaio: binary frame truncated")

// SolveResultDoc is the machine core of a solve response — the session,
// the iteration index and the round-trip solution doc — without the
// human-oriented rendered view and diff that ride along in JSON. It is
// the binary solve response body and the JSON shape binary clients are
// documented against.
type SolveResultDoc struct {
	Session   string      `json:"session"`
	Iteration int         `json:"iteration"`
	Solution  SolutionDoc `json:"solution"`
}

// ProgressDoc is one solver progress tick, mirroring the SSE "progress"
// event payload.
type ProgressDoc struct {
	Iteration   int     `json:"iteration"`
	Evals       int     `json:"evals"`
	BestQuality float64 `json:"bestQuality"`
	Feasible    bool    `json:"feasible"`
}

// --- encoder ---

// binWriter accumulates a frame. Encoding can only fail on non-finite
// floats and oversized strings/lists, checked at the call sites that
// introduce them, so the writer carries a sticky error instead of
// returning one per primitive.
type binWriter struct {
	buf []byte
	err error
}

func (w *binWriter) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("schemaio: binary encode: "+format, args...)
	}
}

func (w *binWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *binWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *binWriter) vint(v int) { w.varint(int64(v)) }

func (w *binWriter) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *binWriter) f64(v float64) {
	if !isFinite(v) {
		w.fail("non-finite float %v", v)
		return
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *binWriter) string(s string) {
	if len(s) > maxBinaryString {
		w.fail("string of %d bytes, limit %d", len(s), maxBinaryString)
		return
	}
	if !utf8.ValidString(s) {
		w.fail("string is not valid UTF-8")
		return
	}
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *binWriter) count(n int, what string) bool {
	if n > decodeListLimit {
		w.fail("%s carries %d entries, limit %d", what, n, decodeListLimit)
		return false
	}
	w.uvarint(uint64(n))
	return true
}

func (w *binWriter) intList(v []int, what string) {
	if !w.count(len(v), what) {
		return
	}
	for _, x := range v {
		w.vint(x)
	}
}

func (w *binWriter) floatMap(m map[string]float64, what string) {
	if !w.count(len(m), what) {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.string(k)
		w.f64(m[k])
	}
}

func (w *binWriter) stringMap(m map[string]string, what string) {
	if !w.count(len(m), what) {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.string(k)
		w.string(m[k])
	}
}

func (w *binWriter) gas(gas []model.GA, what string) {
	if !w.count(len(gas), what) {
		return
	}
	for _, ga := range gas {
		if !w.count(len(ga), what+" members") {
			return
		}
		for _, ref := range ga {
			w.vint(ref.Source)
			w.vint(ref.Attr)
		}
	}
}

func (w *binWriter) problem(d *ProblemDoc) {
	w.vint(d.MaxSources)
	w.f64(d.Theta)
	w.vint(d.Beta)
	w.intList(d.Constraints.Sources, "constraints.sources")
	w.gas(d.Constraints.GAs, "constraints.gas")
	w.intList(d.Constraints.Exclude, "constraints.exclude")
	w.floatMap(d.Weights, "weights")
	w.stringMap(d.Characteristics, "characteristics")
	w.string(d.Optimizer)
	w.varint(d.Seed)
	w.vint(d.MaxEvals)
	w.vint(d.Workers)
	w.intList(d.InitialSources, "initialSources")
}

func (w *binWriter) solution(d *SolutionDoc) {
	w.vint(d.N)
	w.intList(d.Sources, "sources")
	w.f64(d.Quality)
	w.bool(d.Feasible)
	w.floatMap(d.Breakdown, "breakdown")
	w.vint(d.Evals)
	if d.Schema != nil {
		w.bool(true)
		w.gas(d.Schema.GAs, "schema.gas")
	} else {
		w.bool(false)
	}
	if w.count(len(d.GAQuality), "gaQuality") {
		for _, q := range d.GAQuality {
			w.f64(q)
		}
	}
	if w.count(len(d.FromConstraint), "fromConstraint") {
		for _, b := range d.FromConstraint {
			w.bool(b)
		}
	}
	w.f64(d.MatchQuality)
	w.bool(d.MatchValid)
	w.varint(d.CacheHits)
	w.varint(d.CacheMisses)
	w.varint(d.CacheEvictions)
	w.varint(d.ElapsedNS)
}

func (w *binWriter) iteration(d *IterationDoc) {
	w.problem(&d.Problem)
	w.solution(&d.Solution)
}

func newFrame(typ byte) *binWriter {
	w := &binWriter{buf: make([]byte, 0, 256)}
	w.buf = append(w.buf, binaryMagic[:]...)
	w.buf = append(w.buf, typ)
	return w
}

func (w *binWriter) finish() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	return w.buf, nil
}

// EncodeBinaryProblem renders a problem doc as one binary frame.
func EncodeBinaryProblem(d *ProblemDoc) ([]byte, error) {
	w := newFrame(binaryTypeProblem)
	w.problem(d)
	return w.finish()
}

// EncodeBinarySolution renders a solution doc as one binary frame.
func EncodeBinarySolution(d *SolutionDoc) ([]byte, error) {
	w := newFrame(binaryTypeSolution)
	w.solution(d)
	return w.finish()
}

// EncodeBinaryIteration renders one history entry as one binary frame.
func EncodeBinaryIteration(d *IterationDoc) ([]byte, error) {
	w := newFrame(binaryTypeIteration)
	w.iteration(d)
	return w.finish()
}

// EncodeBinaryHistory renders a whole session history as one frame.
func EncodeBinaryHistory(docs []IterationDoc) ([]byte, error) {
	w := newFrame(binaryTypeHistory)
	if w.count(len(docs), "history") {
		for i := range docs {
			w.iteration(&docs[i])
		}
	}
	return w.finish()
}

// EncodeBinarySolveResult renders a solve result as one binary frame —
// the binary solve response body.
func EncodeBinarySolveResult(d *SolveResultDoc) ([]byte, error) {
	w := newFrame(binaryTypeSolveResult)
	w.string(d.Session)
	w.vint(d.Iteration)
	w.solution(&d.Solution)
	return w.finish()
}

// EncodeBinaryProgress renders one progress tick as one binary frame.
func EncodeBinaryProgress(d *ProgressDoc) ([]byte, error) {
	w := newFrame(binaryTypeProgress)
	w.vint(d.Iteration)
	w.vint(d.Evals)
	w.f64(d.BestQuality)
	w.bool(d.Feasible)
	return w.finish()
}

// --- decoder ---

type binReader struct {
	buf []byte
	off int
}

func (r *binReader) remaining() int { return len(r.buf) - r.off }

// uvarint reads a minimally encoded unsigned varint. Non-minimal
// encodings ("0x80 0x00" for zero) are rejected to keep decoding the
// exact inverse of encoding.
func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errBinaryTruncated
	}
	var scratch [binary.MaxVarintLen64]byte
	if binary.PutUvarint(scratch[:], v) != n {
		return 0, errors.New("schemaio: binary frame carries a non-minimal varint")
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	// Undo zigzag exactly as encoding/binary does.
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, nil
}

func (r *binReader) vint() (int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("schemaio: binary int %d outside 32-bit range", v)
	}
	return int(v), nil
}

func (r *binReader) bool() (bool, error) {
	if r.remaining() < 1 {
		return false, errBinaryTruncated
	}
	b := r.buf[r.off]
	r.off++
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("schemaio: binary bool byte 0x%02x", b)
}

func (r *binReader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, errBinaryTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	if !isFinite(v) {
		return 0, fmt.Errorf("schemaio: binary float %v is not finite", v)
	}
	return v, nil
}

func (r *binReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxBinaryString {
		return "", fmt.Errorf("schemaio: binary string of %d bytes, limit %d", n, maxBinaryString)
	}
	if uint64(r.remaining()) < n {
		return "", errBinaryTruncated
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	if !utf8.ValidString(s) {
		return "", errors.New("schemaio: binary string is not valid UTF-8")
	}
	return s, nil
}

// count reads a collection length, bounding it by both the list limit
// and the bytes actually left in the frame (each element costs at least
// one byte), so a hostile count cannot force a large allocation.
func (r *binReader) count(what string) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > decodeListLimit {
		return 0, fmt.Errorf("schemaio: binary %s carries %d entries, limit %d", what, n, decodeListLimit)
	}
	if n > uint64(r.remaining()) {
		return 0, errBinaryTruncated
	}
	return int(n), nil
}

func (r *binReader) intList(what string) ([]int, error) {
	n, err := r.count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		if out[i], err = r.vint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) floatMap(what string) (map[string]float64, error) {
	n, err := r.count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make(map[string]float64, n)
	prev := ""
	for i := 0; i < n; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("schemaio: binary %s keys not strictly ascending at %q", what, k)
		}
		prev = k
		if out[k], err = r.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) stringMap(what string) (map[string]string, error) {
	n, err := r.count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make(map[string]string, n)
	prev := ""
	for i := 0; i < n; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("schemaio: binary %s keys not strictly ascending at %q", what, k)
		}
		prev = k
		if out[k], err = r.string(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) gas(what string) ([]model.GA, error) {
	n, err := r.count(what)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]model.GA, n)
	for i := range out {
		m, err := r.count(what + " members")
		if err != nil {
			return nil, err
		}
		ga := make(model.GA, m)
		for j := range ga {
			if ga[j].Source, err = r.vint(); err != nil {
				return nil, err
			}
			if ga[j].Attr, err = r.vint(); err != nil {
				return nil, err
			}
		}
		out[i] = ga
	}
	return out, nil
}

func (r *binReader) problem() (*ProblemDoc, error) {
	d := &ProblemDoc{}
	var err error
	if d.MaxSources, err = r.vint(); err != nil {
		return nil, err
	}
	if d.Theta, err = r.f64(); err != nil {
		return nil, err
	}
	if d.Beta, err = r.vint(); err != nil {
		return nil, err
	}
	if d.Constraints.Sources, err = r.intList("constraints.sources"); err != nil {
		return nil, err
	}
	if d.Constraints.GAs, err = r.gas("constraints.gas"); err != nil {
		return nil, err
	}
	if d.Constraints.Exclude, err = r.intList("constraints.exclude"); err != nil {
		return nil, err
	}
	if d.Weights, err = r.floatMap("weights"); err != nil {
		return nil, err
	}
	if d.Characteristics, err = r.stringMap("characteristics"); err != nil {
		return nil, err
	}
	if d.Optimizer, err = r.string(); err != nil {
		return nil, err
	}
	if d.Seed, err = r.varint(); err != nil {
		return nil, err
	}
	if d.MaxEvals, err = r.vint(); err != nil {
		return nil, err
	}
	if d.Workers, err = r.vint(); err != nil {
		return nil, err
	}
	if d.InitialSources, err = r.intList("initialSources"); err != nil {
		return nil, err
	}
	return d, nil
}

func (r *binReader) solution() (*SolutionDoc, error) {
	d := &SolutionDoc{}
	var err error
	if d.N, err = r.vint(); err != nil {
		return nil, err
	}
	if d.Sources, err = r.intList("sources"); err != nil {
		return nil, err
	}
	if d.Quality, err = r.f64(); err != nil {
		return nil, err
	}
	if d.Feasible, err = r.bool(); err != nil {
		return nil, err
	}
	if d.Breakdown, err = r.floatMap("breakdown"); err != nil {
		return nil, err
	}
	if d.Evals, err = r.vint(); err != nil {
		return nil, err
	}
	hasSchema, err := r.bool()
	if err != nil {
		return nil, err
	}
	if hasSchema {
		gas, err := r.gas("schema.gas")
		if err != nil {
			return nil, err
		}
		d.Schema = &model.MediatedSchema{GAs: gas}
	}
	n, err := r.count("gaQuality")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		d.GAQuality = make([]float64, n)
		for i := range d.GAQuality {
			if d.GAQuality[i], err = r.f64(); err != nil {
				return nil, err
			}
		}
	}
	if n, err = r.count("fromConstraint"); err != nil {
		return nil, err
	}
	if n > 0 {
		d.FromConstraint = make([]bool, n)
		for i := range d.FromConstraint {
			if d.FromConstraint[i], err = r.bool(); err != nil {
				return nil, err
			}
		}
	}
	if d.MatchQuality, err = r.f64(); err != nil {
		return nil, err
	}
	if d.MatchValid, err = r.bool(); err != nil {
		return nil, err
	}
	if d.CacheHits, err = r.varint(); err != nil {
		return nil, err
	}
	if d.CacheMisses, err = r.varint(); err != nil {
		return nil, err
	}
	if d.CacheEvictions, err = r.varint(); err != nil {
		return nil, err
	}
	if d.ElapsedNS, err = r.varint(); err != nil {
		return nil, err
	}
	return d, nil
}

func (r *binReader) iteration() (*IterationDoc, error) {
	p, err := r.problem()
	if err != nil {
		return nil, err
	}
	s, err := r.solution()
	if err != nil {
		return nil, err
	}
	return &IterationDoc{Problem: *p, Solution: *s}, nil
}

// openFrame checks magic and type and returns the payload reader.
func openFrame(b []byte, typ byte) (*binReader, error) {
	if len(b) < len(binaryMagic)+1 {
		return nil, errBinaryTruncated
	}
	if [4]byte(b[:4]) != binaryMagic {
		return nil, fmt.Errorf("schemaio: not a binary frame (magic %q)", b[:4])
	}
	if b[4] != typ {
		return nil, fmt.Errorf("schemaio: binary frame type 0x%02x, want 0x%02x", b[4], typ)
	}
	return &binReader{buf: b, off: 5}, nil
}

func (r *binReader) close() error {
	if r.remaining() != 0 {
		return fmt.Errorf("schemaio: %d trailing bytes after binary frame", r.remaining())
	}
	return nil
}

// DecodeBinaryProblem parses one problem frame.
func DecodeBinaryProblem(b []byte) (*ProblemDoc, error) {
	r, err := openFrame(b, binaryTypeProblem)
	if err != nil {
		return nil, err
	}
	d, err := r.problem()
	if err != nil {
		return nil, err
	}
	return d, r.close()
}

// DecodeBinarySolution parses one solution frame.
func DecodeBinarySolution(b []byte) (*SolutionDoc, error) {
	r, err := openFrame(b, binaryTypeSolution)
	if err != nil {
		return nil, err
	}
	d, err := r.solution()
	if err != nil {
		return nil, err
	}
	return d, r.close()
}

// DecodeBinaryIteration parses one iteration frame.
func DecodeBinaryIteration(b []byte) (*IterationDoc, error) {
	r, err := openFrame(b, binaryTypeIteration)
	if err != nil {
		return nil, err
	}
	d, err := r.iteration()
	if err != nil {
		return nil, err
	}
	return d, r.close()
}

// DecodeBinaryHistory parses one history frame.
func DecodeBinaryHistory(b []byte) ([]IterationDoc, error) {
	r, err := openFrame(b, binaryTypeHistory)
	if err != nil {
		return nil, err
	}
	n, err := r.count("history")
	if err != nil {
		return nil, err
	}
	docs := make([]IterationDoc, 0, n)
	for i := 0; i < n; i++ {
		d, err := r.iteration()
		if err != nil {
			return nil, fmt.Errorf("schemaio: binary history iteration %d: %w", i, err)
		}
		docs = append(docs, *d)
	}
	return docs, r.close()
}

// DecodeBinarySolveResult parses one solve-result frame.
func DecodeBinarySolveResult(b []byte) (*SolveResultDoc, error) {
	r, err := openFrame(b, binaryTypeSolveResult)
	if err != nil {
		return nil, err
	}
	d := &SolveResultDoc{}
	if d.Session, err = r.string(); err != nil {
		return nil, err
	}
	if d.Iteration, err = r.vint(); err != nil {
		return nil, err
	}
	sol, err := r.solution()
	if err != nil {
		return nil, err
	}
	d.Solution = *sol
	return d, r.close()
}

// DecodeBinaryProgress parses one progress frame.
func DecodeBinaryProgress(b []byte) (*ProgressDoc, error) {
	r, err := openFrame(b, binaryTypeProgress)
	if err != nil {
		return nil, err
	}
	d := &ProgressDoc{}
	if d.Iteration, err = r.vint(); err != nil {
		return nil, err
	}
	if d.Evals, err = r.vint(); err != nil {
		return nil, err
	}
	if d.BestQuality, err = r.f64(); err != nil {
		return nil, err
	}
	if d.Feasible, err = r.bool(); err != nil {
		return nil, err
	}
	return d, r.close()
}
