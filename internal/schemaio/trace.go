package schemaio

// JSONL encoding for solve traces (internal/trace): one header document
// on the first line, then one document per span. The format is
// append-friendly (a ube-bench run can stream spans to disk), diffable
// (counter maps marshal with sorted keys, so canonical traces are
// byte-comparable as files), and strictly validated on decode — the
// trace endpoint and ube-trace both read files across a trust boundary.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ube/internal/trace"
)

// TraceDocName identifies a trace stream's header document.
const TraceDocName = "ube.trace"

// TraceVersion is the current trace stream version.
const TraceVersion = 1

// traceSpanLimit caps the span count a decoded trace may declare; the
// tracer's own DefaultMaxSpans is 16384, so anything near this limit is
// a hostile or corrupt file, rejected before the slice allocates.
const traceSpanLimit = 1 << 20

// traceLineLimit caps one JSONL line: a span document carries a short
// name and at most NumCounters counter entries.
const traceLineLimit = 1 << 16

// traceNameLimit caps a span name; the tracer only ever uses short
// constant strings.
const traceNameLimit = 256

// TraceHeaderDoc is the first line of a trace stream.
type TraceHeaderDoc struct {
	Doc     string `json:"doc"`
	Version int    `json:"version"`
	Label   string `json:"label,omitempty"`
	Spans   int    `json:"spans"`
	Dropped int64  `json:"dropped,omitempty"`
}

// SpanDoc is one span line. Counts carries only nonzero counters, keyed
// by their stable wire names.
type SpanDoc struct {
	ID     int32  `json:"id"`
	Parent int32  `json:"parent"`
	Name   string `json:"name"`
	//ube:operational span timings are operational; canonical traces carry them zeroed
	Start int64 `json:"startNs"`
	//ube:operational span timings are operational; canonical traces carry them zeroed
	Dur    int64            `json:"durNs"`
	Counts map[string]int64 `json:"counts,omitempty"`
}

// EncodeTrace writes tr as JSONL: header line, then one line per span.
func EncodeTrace(w io.Writer, tr *trace.Trace) error {
	if tr == nil {
		return fmt.Errorf("schemaio: nil trace")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline separator
	if err := enc.Encode(TraceHeaderDoc{
		Doc:     TraceDocName,
		Version: TraceVersion,
		Label:   tr.Label,
		Spans:   len(tr.Spans),
		Dropped: tr.Dropped,
	}); err != nil {
		return err
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if err := enc.Encode(SpanDoc{
			ID:     sp.ID,
			Parent: sp.Parent,
			Name:   sp.Name,
			Start:  sp.Start,
			Dur:    sp.Dur,
			Counts: sp.Counts.Map(),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeTraceBytes renders tr to a byte slice — the form the trace
// determinism tests compare and the server response body.
func EncodeTraceBytes(tr *trace.Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTrace reads a JSONL trace stream back, validating structure at
// the trust boundary: the header must come first and declare the exact
// span count; span IDs must equal their line order (which rejects
// duplicates); parents must reference an earlier span or -1 (which
// rejects cyclic and forward references); timings and counters must be
// non-negative and counters must resolve to known names. Truncated
// streams and trailing garbage are errors, never panics.
func DecodeTrace(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), traceLineLimit)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("schemaio: trace header: %w", err)
		}
		return nil, fmt.Errorf("schemaio: trace stream is empty")
	}
	var hdr TraceHeaderDoc
	if err := decodeStrict(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("schemaio: trace header: %w", err)
	}
	if hdr.Doc != TraceDocName {
		return nil, fmt.Errorf("schemaio: trace header doc %q, want %q", hdr.Doc, TraceDocName)
	}
	if hdr.Version != TraceVersion {
		return nil, fmt.Errorf("schemaio: trace version %d unsupported (want %d)", hdr.Version, TraceVersion)
	}
	if hdr.Spans < 0 || hdr.Spans > traceSpanLimit {
		return nil, fmt.Errorf("schemaio: trace declares %d spans, limit %d", hdr.Spans, traceSpanLimit)
	}
	if hdr.Dropped < 0 {
		return nil, fmt.Errorf("schemaio: trace declares %d dropped spans", hdr.Dropped)
	}
	tr := &trace.Trace{Label: hdr.Label, Dropped: hdr.Dropped, Spans: make([]trace.Span, 0, hdr.Spans)}
	for i := 0; i < hdr.Spans; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("schemaio: trace span %d: %w", i, err)
			}
			return nil, fmt.Errorf("schemaio: trace truncated at span %d of %d", i, hdr.Spans)
		}
		var d SpanDoc
		if err := decodeStrict(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("schemaio: trace span %d: %w", i, err)
		}
		sp, err := d.decode(int32(i))
		if err != nil {
			return nil, fmt.Errorf("schemaio: trace span %d: %w", i, err)
		}
		tr.Spans = append(tr.Spans, sp)
	}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) != 0 {
			return nil, fmt.Errorf("schemaio: trailing data after %d declared spans", hdr.Spans)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schemaio: trace stream: %w", err)
	}
	return tr, nil
}

// decode validates one span line against its position in the stream.
func (d *SpanDoc) decode(line int32) (trace.Span, error) {
	var sp trace.Span
	if d.ID != line {
		return sp, fmt.Errorf("span id %d at stream position %d (ids must be sequential and unique)", d.ID, line)
	}
	if d.Parent != -1 && (d.Parent < 0 || d.Parent >= d.ID) {
		return sp, fmt.Errorf("span %d parent %d must be -1 or an earlier span (cyclic or forward reference)", d.ID, d.Parent)
	}
	if d.Name == "" || len(d.Name) > traceNameLimit {
		return sp, fmt.Errorf("span %d name length %d outside [1,%d]", d.ID, len(d.Name), traceNameLimit)
	}
	if d.Start < 0 || d.Dur < 0 {
		return sp, fmt.Errorf("span %d has negative timing (start %d, dur %d)", d.ID, d.Start, d.Dur)
	}
	sp = trace.Span{ID: d.ID, Parent: d.Parent, Name: d.Name, Start: d.Start, Dur: d.Dur}
	for name, v := range d.Counts {
		c, ok := trace.CounterByName(name)
		if !ok {
			return sp, fmt.Errorf("span %d has unknown counter %q", d.ID, name)
		}
		if v < 0 {
			return sp, fmt.Errorf("span %d counter %q is negative (%d)", d.ID, name, v)
		}
		sp.Counts[c] = v
	}
	return sp, nil
}

// decodeStrict unmarshals one JSONL line rejecting unknown fields and
// trailing tokens.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data on line")
	}
	return nil
}
