package schemaio

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// anything it accepts survives a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("a.example: {title, author}\n")
	f.Add("x: {a} | cardinality=10 mttf=1.5\n")
	f.Add("# comment\n\nweird:::: {a,b,,}\n")
	f.Add(": {}\n")
	f.Add("a: {b} | k=v\n")
	f.Fuzz(func(t *testing.T, input string) {
		u, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf strings.Builder
		if err := Write(&buf, u); err != nil {
			t.Fatalf("Write failed on accepted universe: %v", err)
		}
		back, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("own output rejected: %v\ninput: %q\noutput: %q", err, input, buf.String())
		}
		if back.N() != u.N() {
			t.Fatalf("round trip changed source count: %d vs %d", back.N(), u.N())
		}
	})
}
