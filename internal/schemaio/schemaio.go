// Package schemaio reads and writes the textual source-description format
// the paper prints in Figure 1 — the natural exchange format for source
// lists extracted from a hidden-Web search engine:
//
//	tonyawards.com: {keywords}
//	aceticket.com: {state, city, event, venue}
//	# comments and blank lines are ignored
//
// An optional third section per line carries source metadata as key=value
// pairs, extending the paper's format with the inputs µBE actually uses:
//
//	aceticket.com: {state, city, event, venue} | cardinality=120000 mttf=90
//
// Sources loaded this way have no data signature (they are uncooperative
// in the §4 sense) unless signatures are attached afterwards.
package schemaio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ube/internal/model"
)

// Parse reads source descriptions, one per line, into a universe. Line
// numbers in errors are 1-based.
func Parse(r io.Reader) (*model.Universe, error) {
	u := &model.Universe{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	seen := make(map[string]int)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		src, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("schemaio: line %d: %w", lineNo, err)
		}
		if prev, dup := seen[src.Name]; dup {
			return nil, fmt.Errorf("schemaio: line %d: source %q already defined as source %d", lineNo, src.Name, prev)
		}
		src.ID = len(u.Sources)
		seen[src.Name] = src.ID
		u.Sources = append(u.Sources, src)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schemaio: %w", err)
	}
	if len(u.Sources) == 0 {
		return nil, fmt.Errorf("schemaio: no sources found")
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// parseLine parses one "name: {a, b, c} | k=v k=v" line.
func parseLine(line string) (model.Source, error) {
	var src model.Source
	name, rest, ok := strings.Cut(line, ":")
	if !ok {
		return src, fmt.Errorf("missing ':' separator")
	}
	src.Name = strings.TrimSpace(name)
	if src.Name == "" {
		return src, fmt.Errorf("empty source name")
	}

	rest = strings.TrimSpace(rest)
	var meta string
	if i := strings.Index(rest, "|"); i >= 0 {
		rest, meta = strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1:])
	}
	if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
		return src, fmt.Errorf("schema must be enclosed in {braces}, got %q", rest)
	}
	for _, a := range strings.Split(rest[1:len(rest)-1], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return src, fmt.Errorf("empty attribute name")
		}
		src.Attributes = append(src.Attributes, a)
	}
	if len(src.Attributes) == 0 {
		return src, fmt.Errorf("source has no attributes")
	}

	for _, kv := range strings.Fields(meta) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return src, fmt.Errorf("metadata %q is not key=value", kv)
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return src, fmt.Errorf("metadata %s: %v", k, err)
		}
		if k == "cardinality" {
			//ube:float-exact integrality test: a cardinality must round-trip through int64 exactly
			if x < 0 || x != float64(int64(x)) {
				return src, fmt.Errorf("cardinality must be a non-negative integer, got %q", v)
			}
			src.Cardinality = int64(x)
			continue
		}
		if x < 0 {
			return src, fmt.Errorf("characteristic %s must be non-negative (§5), got %q", k, v)
		}
		if src.Characteristics == nil {
			src.Characteristics = make(map[string]float64)
		}
		src.Characteristics[k] = x
	}
	return src, nil
}

// Write renders a universe in the Figure 1 format, inverse to Parse.
// Signatures are not representable in this format and are dropped.
func Write(w io.Writer, u *model.Universe) error {
	bw := bufio.NewWriter(w)
	for i := range u.Sources {
		s := &u.Sources[i]
		if _, err := fmt.Fprintf(bw, "%s: {%s}", s.Name, strings.Join(s.Attributes, ", ")); err != nil {
			return err
		}
		if s.Cardinality > 0 || len(s.Characteristics) > 0 {
			if _, err := fmt.Fprint(bw, " |"); err != nil {
				return err
			}
			if s.Cardinality > 0 {
				if _, err := fmt.Fprintf(bw, " cardinality=%d", s.Cardinality); err != nil {
					return err
				}
			}
			keys := make([]string, 0, len(s.Characteristics))
			for k := range s.Characteristics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, err := fmt.Fprintf(bw, " %s=%g", k, s.Characteristics[k]); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
