package schemaio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceDecode drives the trace codec's trust boundary: arbitrary
// bytes through DecodeTrace, which ube-trace and the server's trace
// endpoint both use on files from outside the process. Truncated
// streams, duplicate span IDs, cyclic or forward parent references,
// unknown counters and oversized declarations must come back as errors —
// never panics, never unbounded allocations — and any accepted trace
// must survive an encode→decode round trip byte-identically.
//
// Run continuously in CI's fuzz job:
//
//	go test -fuzz=FuzzTraceDecode -fuzztime=30s ./internal/schemaio
func FuzzTraceDecode(f *testing.F) {
	valid, err := EncodeTraceBytes(sampleTrace())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-stream
	lines := strings.SplitAfter(strings.TrimSuffix(string(valid), "\n"), "\n")
	f.Add([]byte(lines[0] + lines[1] + lines[1]))                                           // duplicate span ID
	f.Add([]byte(lines[0] + `{"id":0,"parent":0,"name":"x","startNs":0,"durNs":0}` + "\n")) // self-parent cycle
	f.Add([]byte(lines[0] + `{"id":0,"parent":7,"name":"x","startNs":0,"durNs":0}` + "\n")) // forward parent
	f.Add([]byte(`{"doc":"ube.trace","version":1,"spans":1048577}` + "\n"))                 // over the span limit
	f.Add([]byte(`{"doc":"ube.trace","version":1,"spans":1}` + "\n" + `{"id":0,"parent":-1,"name":"x","startNs":0,"durNs":0,"counts":{"bogus":3}}` + "\n"))
	f.Add([]byte("not a trace\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := EncodeTraceBytes(tr)
		if err != nil {
			t.Fatalf("accepted trace does not re-encode: %v\ninput: %q", err, data)
		}
		again, err := DecodeTrace(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v\ninput: %q", err, data)
		}
		out2, err := EncodeTraceBytes(again)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("encode is not a fixed point:\n%q\nvs\n%q", out, out2)
		}
	})
}
