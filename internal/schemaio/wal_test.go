package schemaio

import (
	"encoding/json"
	"strings"
	"testing"
)

func validWALRecord() *WALRecordDoc {
	return &WALRecordDoc{
		Seq:     1,
		Type:    WALTypeSolve,
		Session: "s1",
		TS:      1700000000,
		Data:    json.RawMessage(`{"iteration":0,"request":{}}`),
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	docs := []*WALRecordDoc{
		validWALRecord(),
		{Seq: 2, Type: WALTypeCreate, Session: "s9", Data: json.RawMessage(`{"universe":[]}`)},
		{Seq: 3, Type: WALTypeDelete, Session: "s1"},
		{Seq: 4, Type: WALTypeEvict, Session: "s2"},
		{Seq: 5, Type: WALTypeCheckpoint, Data: json.RawMessage(`{"sessions":["s1"]}`)},
		{Seq: 6, Type: WALTypeSnapshot, Session: "s1", Data: json.RawMessage(`{"x":1}`)},
	}
	for _, want := range docs {
		data, err := EncodeWALRecord(want)
		if err != nil {
			t.Fatalf("EncodeWALRecord(%s): %v", want.Type, err)
		}
		got, err := DecodeWALRecordBytes(data)
		if err != nil {
			t.Fatalf("DecodeWALRecordBytes(%s): %v", want.Type, err)
		}
		re, err := EncodeWALRecord(got)
		if err != nil {
			t.Fatalf("re-encode(%s): %v", want.Type, err)
		}
		if string(re) != string(data) {
			t.Fatalf("%s round trip not byte-identical:\n first=%s\nsecond=%s", want.Type, data, re)
		}
	}
}

func TestWALRecordValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*WALRecordDoc)
		want string
	}{
		{"zero seq", func(d *WALRecordDoc) { d.Seq = 0 }, "sequence"},
		{"unknown type", func(d *WALRecordDoc) { d.Type = "session.mystery" }, "unknown type"},
		{"missing session", func(d *WALRecordDoc) { d.Session = "" }, "no session"},
		{"oversized session", func(d *WALRecordDoc) { d.Session = strings.Repeat("s", walSessionLimit+1) }, "limit"},
		{"checkpoint with session", func(d *WALRecordDoc) { d.Type = WALTypeCheckpoint }, "names session"},
		{"solve without payload", func(d *WALRecordDoc) { d.Data = nil }, "no payload"},
		{"negative ts", func(d *WALRecordDoc) { d.TS = -1 }, "negative timestamp"},
	}
	for _, tc := range cases {
		d := validWALRecord()
		tc.mut(d)
		if _, err := EncodeWALRecord(d); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: EncodeWALRecord err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestDecodeWALRecordBytesStrict(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown field", `{"seq":1,"type":"session.delete","session":"s1","bogus":true}`},
		{"trailing data", `{"seq":1,"type":"session.delete","session":"s1"}{"seq":2}`},
		{"not json", `hello`},
		{"wrong shape", `[1,2,3]`},
		{"empty", ``},
	}
	for _, tc := range cases {
		if _, err := DecodeWALRecordBytes([]byte(tc.data)); err == nil {
			t.Errorf("%s: DecodeWALRecordBytes accepted %q", tc.name, tc.data)
		}
	}
}

func TestWALSolveDocRoundTrip(t *testing.T) {
	want := &WALSolveDoc{Iteration: 3, Request: json.RawMessage(`{"pins":["a"]}`)}
	data, err := EncodeWALSolve(want)
	if err != nil {
		t.Fatalf("EncodeWALSolve: %v", err)
	}
	got, err := DecodeWALSolveBytes(data)
	if err != nil {
		t.Fatalf("DecodeWALSolveBytes: %v", err)
	}
	if got.Iteration != want.Iteration || string(got.Request) != string(want.Request) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	bad := []*WALSolveDoc{
		{Iteration: -1, Request: json.RawMessage(`{}`)},
		{Iteration: walHistoryLimit + 1, Request: json.RawMessage(`{}`)},
		{Iteration: 0},
		{Iteration: 0, Request: json.RawMessage(`{"x":`)},
	}
	for i, d := range bad {
		if _, err := EncodeWALSolve(d); err == nil {
			t.Errorf("bad solve doc %d accepted", i)
		}
	}
}

func TestSessionSnapshotDocValidation(t *testing.T) {
	valid := func() *SessionSnapshotDoc {
		return &SessionSnapshotDoc{
			ID:      "s1",
			Create:  json.RawMessage(`{"universe":[]}`),
			Problem: &ProblemDoc{},
			Solves:  0,
		}
	}
	if _, err := EncodeSessionSnapshot(valid()); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*SessionSnapshotDoc)
	}{
		{"no id", func(d *SessionSnapshotDoc) { d.ID = "" }},
		{"no create", func(d *SessionSnapshotDoc) { d.Create = nil }},
		{"invalid create", func(d *SessionSnapshotDoc) { d.Create = json.RawMessage(`{`) }},
		{"nil problem", func(d *SessionSnapshotDoc) { d.Problem = nil }},
		{"negative solves", func(d *SessionSnapshotDoc) { d.Solves = -1 }},
		{"history/solves mismatch", func(d *SessionSnapshotDoc) { d.Solves = 2 }},
	}
	for _, tc := range cases {
		d := valid()
		tc.mut(d)
		if _, err := EncodeSessionSnapshot(d); err == nil {
			t.Errorf("%s: invalid snapshot accepted", tc.name)
		}
	}
	data, err := EncodeSessionSnapshot(valid())
	if err != nil {
		t.Fatalf("EncodeSessionSnapshot: %v", err)
	}
	if _, err := DecodeSessionSnapshotBytes(data); err != nil {
		t.Fatalf("DecodeSessionSnapshotBytes: %v", err)
	}
	if _, err := DecodeSessionSnapshotBytes(append(data, 'x')); err == nil {
		t.Error("snapshot with trailing byte accepted")
	}
}

func TestWALCheckpointDoc(t *testing.T) {
	data, err := EncodeWALCheckpoint(&WALCheckpointDoc{Sessions: []string{"s1", "s2"}})
	if err != nil {
		t.Fatalf("EncodeWALCheckpoint: %v", err)
	}
	got, err := DecodeWALCheckpointBytes(data)
	if err != nil {
		t.Fatalf("DecodeWALCheckpointBytes: %v", err)
	}
	if len(got.Sessions) != 2 || got.Sessions[0] != "s1" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := EncodeWALCheckpoint(&WALCheckpointDoc{Sessions: []string{""}}); err == nil {
		t.Error("checkpoint with empty session ID accepted")
	}
	if _, err := DecodeWALCheckpointBytes([]byte(`{"sessions":["s1"],"x":1}`)); err == nil {
		t.Error("checkpoint with unknown field accepted")
	}
}

func TestCompactJSON(t *testing.T) {
	got, err := CompactJSON([]byte(" {\n  \"a\": [1, 2]\n} "))
	if err != nil {
		t.Fatalf("CompactJSON: %v", err)
	}
	if string(got) != `{"a":[1,2]}` {
		t.Fatalf("CompactJSON = %s", got)
	}
	if _, err := CompactJSON([]byte(`{"a":`)); err == nil {
		t.Error("CompactJSON accepted invalid JSON")
	}
}
