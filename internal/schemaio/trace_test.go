package schemaio

import (
	"bytes"
	"strings"
	"testing"

	"ube/internal/trace"
)

// sampleTrace builds a small realistic trace through the tracer itself.
func sampleTrace() *trace.Trace {
	tr := trace.New()
	tr.Label = "test solve"
	st := tr.Stats()
	root := tr.Begin("solve")
	st.Add(trace.CSearchEvals, 12)
	inner := tr.Begin("search")
	st.Add(trace.CMatchRuns, 7)
	st.Add(trace.OSnapshotBuilds, 2)
	tr.End(inner)
	tr.End(root)
	return tr.Finish()
}

func TestTraceRoundTrip(t *testing.T) {
	want := sampleTrace()
	data, err := EncodeTraceBytes(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != want.Label || got.Dropped != want.Dropped || len(got.Spans) != len(want.Spans) {
		t.Fatalf("round trip header mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Spans {
		if got.Spans[i] != want.Spans[i] {
			t.Errorf("span %d: got %+v, want %+v", i, got.Spans[i], want.Spans[i])
		}
	}
	// Re-encoding must reproduce the exact bytes (sorted map keys): this
	// is what makes canonical traces comparable as files.
	again, err := EncodeTraceBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-encode is not byte-identical")
	}
}

func TestEncodeTraceNil(t *testing.T) {
	if _, err := EncodeTraceBytes(nil); err == nil {
		t.Error("nil trace encoded")
	}
}

func TestDecodeTraceRejects(t *testing.T) {
	valid, err := EncodeTraceBytes(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(valid), "\n"), "\n")

	cases := map[string]string{
		"empty stream":     "",
		"garbage header":   "not json\n",
		"wrong doc":        `{"doc":"ube.universe","version":1,"spans":0}` + "\n",
		"wrong version":    `{"doc":"ube.trace","version":99,"spans":0}` + "\n",
		"negative spans":   `{"doc":"ube.trace","version":1,"spans":-1}` + "\n",
		"huge spans":       `{"doc":"ube.trace","version":1,"spans":99999999}` + "\n",
		"negative dropped": `{"doc":"ube.trace","version":1,"spans":0,"dropped":-2}` + "\n",
		"unknown field":    `{"doc":"ube.trace","version":1,"spans":0,"zzz":1}` + "\n",
		"truncated":        lines[0] + lines[1],
		"trailing span":    string(valid) + lines[1],
		"span not json":    lines[0] + "garbage\n",
		"duplicate id":     lines[0] + lines[1] + lines[1],
		"self parent":      lines[0] + `{"id":0,"parent":0,"name":"x","startNs":0,"durNs":0}` + "\n" + lines[2],
		"forward parent":   lines[0] + `{"id":0,"parent":1,"name":"x","startNs":0,"durNs":0}` + "\n" + lines[2],
		"empty name":       lines[0] + `{"id":0,"parent":-1,"name":"","startNs":0,"durNs":0}` + "\n" + lines[2],
		"long name":        lines[0] + `{"id":0,"parent":-1,"name":"` + strings.Repeat("a", 300) + `","startNs":0,"durNs":0}` + "\n" + lines[2],
		"negative dur":     lines[0] + `{"id":0,"parent":-1,"name":"x","startNs":0,"durNs":-1}` + "\n" + lines[2],
		"unknown counter":  lines[0] + `{"id":0,"parent":-1,"name":"x","startNs":0,"durNs":0,"counts":{"zzz":1}}` + "\n" + lines[2],
		"negative counter": lines[0] + `{"id":0,"parent":-1,"name":"x","startNs":0,"durNs":0,"counts":{"search.evals":-1}}` + "\n" + lines[2],
	}
	for name, in := range cases {
		if _, err := DecodeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeTraceTrailingBlankLinesOK(t *testing.T) {
	valid, err := EncodeTraceBytes(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTrace(strings.NewReader(string(valid) + "\n\n")); err != nil {
		t.Errorf("trailing blank lines rejected: %v", err)
	}
}
