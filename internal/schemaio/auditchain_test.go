package schemaio

import (
	"encoding/json"
	"strings"
	"testing"
)

const testDigest = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func validChainRecord() *AuditChainRecordDoc {
	return &AuditChainRecordDoc{
		K:      AuditChainKindRecord,
		Seq:    1,
		Record: json.RawMessage(`{"action":"session.create","session":"s1"}`),
		Leaf:   testDigest,
		Chain:  testDigest,
	}
}

func validChainBatch() *AuditChainBatchDoc {
	return &AuditChainBatchDoc{K: AuditChainKindBatch, Batch: 1, From: 1, To: 4, Root: testDigest}
}

func TestAuditChainLineRoundTrip(t *testing.T) {
	header := EncodeAuditChainHeader()
	doc, err := DecodeAuditChainLine(header)
	if err != nil {
		t.Fatalf("decode header: %v", err)
	}
	if h, ok := doc.(*AuditChainHeaderDoc); !ok || h.Version != AuditChainVersion {
		t.Fatalf("header decoded to %#v", doc)
	}

	recLine, err := EncodeAuditChainRecord(validChainRecord())
	if err != nil {
		t.Fatalf("encode record: %v", err)
	}
	doc, err = DecodeAuditChainLine(recLine)
	if err != nil {
		t.Fatalf("decode record: %v", err)
	}
	rec, ok := doc.(*AuditChainRecordDoc)
	if !ok {
		t.Fatalf("record decoded to %#v", doc)
	}
	re, err := EncodeAuditChainRecord(rec)
	if err != nil {
		t.Fatalf("re-encode record: %v", err)
	}
	if string(re) != string(recLine) {
		t.Fatalf("record round trip not byte-identical:\n first=%s\nsecond=%s", recLine, re)
	}

	batchLine, err := EncodeAuditChainBatch(validChainBatch())
	if err != nil {
		t.Fatalf("encode batch: %v", err)
	}
	doc, err = DecodeAuditChainLine(batchLine)
	if err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	b, ok := doc.(*AuditChainBatchDoc)
	if !ok || b.From != 1 || b.To != 4 {
		t.Fatalf("batch decoded to %#v", doc)
	}
}

func TestAuditChainRecordValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AuditChainRecordDoc)
	}{
		{"wrong kind", func(d *AuditChainRecordDoc) { d.K = "x" }},
		{"zero seq", func(d *AuditChainRecordDoc) { d.Seq = 0 }},
		{"no record", func(d *AuditChainRecordDoc) { d.Record = nil }},
		{"invalid record", func(d *AuditChainRecordDoc) { d.Record = json.RawMessage(`{`) }},
		{"short leaf", func(d *AuditChainRecordDoc) { d.Leaf = "abc" }},
		{"uppercase leaf", func(d *AuditChainRecordDoc) { d.Leaf = strings.ToUpper(testDigest) }},
		{"nonhex chain", func(d *AuditChainRecordDoc) { d.Chain = strings.Replace(testDigest, "0", "g", 1) }},
	}
	for _, tc := range cases {
		d := validChainRecord()
		tc.mut(d)
		if _, err := EncodeAuditChainRecord(d); err == nil {
			t.Errorf("%s: invalid record accepted", tc.name)
		}
	}
}

func TestAuditChainBatchValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AuditChainBatchDoc)
	}{
		{"wrong kind", func(d *AuditChainBatchDoc) { d.K = "r" }},
		{"zero from", func(d *AuditChainBatchDoc) { d.From = 0 }},
		{"inverted range", func(d *AuditChainBatchDoc) { d.To = 0 }},
		{"bad root", func(d *AuditChainBatchDoc) { d.Root = "zz" }},
		{"bad sig", func(d *AuditChainBatchDoc) { d.Sig = "zz" }},
	}
	for _, tc := range cases {
		d := validChainBatch()
		tc.mut(d)
		if _, err := EncodeAuditChainBatch(d); err == nil {
			t.Errorf("%s: invalid batch accepted", tc.name)
		}
	}
	d := validChainBatch()
	d.Sig = testDigest
	if _, err := EncodeAuditChainBatch(d); err != nil {
		t.Errorf("signed batch rejected: %v", err)
	}
}

func TestDecodeAuditChainLineStrict(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"unknown kind", `{"k":"z"}`},
		{"no kind", `{"seq":1}`},
		{"not json", `garbage`},
		{"header wrong doc", `{"k":"h","doc":"other","version":1}`},
		{"header wrong version", `{"k":"h","doc":"ube.audit.chain","version":2}`},
		{"header extra field", `{"k":"h","doc":"ube.audit.chain","version":1,"x":1}`},
		{"record extra field", `{"k":"r","seq":1,"record":{},"leaf":"` + testDigest + `","chain":"` + testDigest + `","x":1}`},
		{"batch extra field", `{"k":"b","batch":1,"from":1,"to":1,"root":"` + testDigest + `","x":1}`},
	}
	for _, tc := range cases {
		if _, err := DecodeAuditChainLine([]byte(tc.line)); err == nil {
			t.Errorf("%s: line accepted: %s", tc.name, tc.line)
		}
	}
	long := `{"k":"r","seq":1,"record":"` + strings.Repeat("a", auditChainLineLimit) + `"}`
	if _, err := DecodeAuditChainLine([]byte(long)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized line err = %v", err)
	}
}

func TestAuditProofRoundTrip(t *testing.T) {
	want := &AuditProofDoc{
		Doc:    AuditProofDocName,
		Seq:    3,
		Batch:  1,
		Record: json.RawMessage(`{"action":"solve.done"}`),
		Steps:  []AuditProofStepDoc{{Right: true, Sibling: testDigest}, {Right: false, Sibling: testDigest}},
		Root:   testDigest,
	}
	data, err := EncodeAuditProof(want)
	if err != nil {
		t.Fatalf("EncodeAuditProof: %v", err)
	}
	got, err := DecodeAuditProofBytes(data)
	if err != nil {
		t.Fatalf("DecodeAuditProofBytes: %v", err)
	}
	if got.Seq != want.Seq || len(got.Steps) != 2 || !got.Steps[0].Right || got.Steps[1].Right {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	bad := []*AuditProofDoc{
		{Doc: "other", Seq: 1, Record: json.RawMessage(`{}`), Root: testDigest},
		{Doc: AuditProofDocName, Seq: 0, Record: json.RawMessage(`{}`), Root: testDigest},
		{Doc: AuditProofDocName, Seq: 1, Root: testDigest},
		{Doc: AuditProofDocName, Seq: 1, Record: json.RawMessage(`{}`), Root: "short"},
		{Doc: AuditProofDocName, Seq: 1, Record: json.RawMessage(`{}`),
			Steps: []AuditProofStepDoc{{Sibling: "bad"}}, Root: testDigest},
	}
	for i, d := range bad {
		if _, err := EncodeAuditProof(d); err == nil {
			t.Errorf("bad proof %d accepted", i)
		}
	}
	deep := &AuditProofDoc{Doc: AuditProofDocName, Seq: 1, Record: json.RawMessage(`{}`), Root: testDigest}
	for i := 0; i < auditProofStepLimit+1; i++ {
		deep.Steps = append(deep.Steps, AuditProofStepDoc{Sibling: testDigest})
	}
	if _, err := EncodeAuditProof(deep); err == nil {
		t.Error("over-deep proof accepted")
	}
}

func TestIsHexDigest(t *testing.T) {
	if !isHexDigest(testDigest) {
		t.Error("valid digest rejected")
	}
	for _, s := range []string{"", "abc", strings.ToUpper(testDigest), testDigest + "0", strings.Replace(testDigest, "a", "G", 1)} {
		if isHexDigest(s) {
			t.Errorf("isHexDigest(%q) = true", s)
		}
	}
}
