package schemaio

import (
	"bytes"
	"testing"
)

// FuzzBinaryCodecRoundTrip drives arbitrary bytes through every binary
// frame decoder. Truncated, oversized, non-canonical and NaN-carrying
// frames must come back as errors — never panics, never unbounded
// allocations — and every frame a decoder accepts must be a fixed point
// of the codec: re-encoding the decoded doc reproduces the input byte
// for byte. That is the property that lets the router and the load
// driver treat frames as opaque, re-transmittable bytes.
//
// Run continuously in CI's fuzz job:
//
//	go test -fuzz=FuzzBinaryCodecRoundTrip -fuzztime=30s ./internal/schemaio
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	// Seed with one valid frame per type plus classic corruptions.
	pd := richProblemDoc()
	sd := richSolutionDoc()
	if b, err := EncodeBinaryProblem(pd); err == nil {
		f.Add(b)
		f.Add(b[:len(b)/2])                 // truncated
		f.Add(append(b, 0xff))              // trailing byte
		f.Add(append([]byte("XXB1"), b...)) // wrong magic
	}
	if b, err := EncodeBinarySolution(sd); err == nil {
		f.Add(b)
	}
	if b, err := EncodeBinaryHistory([]IterationDoc{{Problem: *pd, Solution: *sd}}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeBinarySolveResult(&SolveResultDoc{Session: "g1", Iteration: 1, Solution: *sd}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeBinaryProgress(&ProgressDoc{Iteration: 1, Evals: 9, BestQuality: 0.4, Feasible: true}); err == nil {
		f.Add(b)
	}
	f.Add([]byte("UBB1"))
	f.Add([]byte{0x55, 0x42, 0x42, 0x31, 0x06, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := DecodeBinaryProblem(data); err == nil {
			requireFixedPoint(t, data, func() ([]byte, error) { return EncodeBinaryProblem(d) })
		}
		if d, err := DecodeBinarySolution(data); err == nil {
			requireFixedPoint(t, data, func() ([]byte, error) { return EncodeBinarySolution(d) })
		}
		if d, err := DecodeBinaryIteration(data); err == nil {
			requireFixedPoint(t, data, func() ([]byte, error) { return EncodeBinaryIteration(d) })
		}
		if d, err := DecodeBinaryHistory(data); err == nil {
			requireFixedPoint(t, data, func() ([]byte, error) { return EncodeBinaryHistory(d) })
		}
		if d, err := DecodeBinarySolveResult(data); err == nil {
			requireFixedPoint(t, data, func() ([]byte, error) { return EncodeBinarySolveResult(d) })
		}
		if d, err := DecodeBinaryProgress(data); err == nil {
			requireFixedPoint(t, data, func() ([]byte, error) { return EncodeBinaryProgress(d) })
		}
	})
}

func requireFixedPoint(t *testing.T, in []byte, encode func() ([]byte, error)) {
	t.Helper()
	out, err := encode()
	if err != nil {
		t.Fatalf("decoded frame refuses to re-encode: %v\nframe: %x", err, in)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("re-encode is not a fixed point:\nin  %x\nout %x", in, out)
	}
}
