package schemaio

import (
	"encoding/json"
	"strings"
	"testing"

	"ube/internal/model"
)

func churnBatch() []model.Mutation {
	card := int64(4200)
	return []model.Mutation{
		{Op: model.OpAdd, Source: model.Source{
			Name:            "added",
			Attributes:      []string{"title", "isbn"},
			Cardinality:     100,
			Characteristics: map[string]float64{"mttf": 120},
		}},
		{Op: model.OpRemove, ID: 3},
		{Op: model.OpUpdate, ID: 1, Cardinality: &card},
		{Op: model.OpUpdate, ID: 0, Characteristics: map[string]float64{"mttf": 9.5}},
	}
}

func TestChurnRequestRoundTrip(t *testing.T) {
	muts := churnBatch()
	data, err := EncodeChurnRequest(muts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChurnRequestBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(muts)
	round, _ := json.Marshal(got)
	if string(round) != string(want) {
		t.Fatalf("round-trip changed the batch:\n got %s\nwant %s", round, want)
	}
}

func TestChurnRequestRejects(t *testing.T) {
	card := int64(1)
	neg := int64(-1)
	cases := []struct {
		name string
		muts []model.Mutation
		want string
	}{
		{"empty batch", nil, "no mutations"},
		{"unknown op", []model.Mutation{{Op: "rename", ID: 0}}, `unknown op "rename"`},
		{"add without schema", []model.Mutation{{Op: model.OpAdd, Source: model.Source{Name: "x"}}}, "no attributes"},
		{"add with empty attribute", []model.Mutation{{Op: model.OpAdd, Source: model.Source{Attributes: []string{""}}}}, "length 0"},
		{"add with update fields", []model.Mutation{{Op: model.OpAdd, Source: model.Source{Attributes: []string{"a"}}, Cardinality: &card}}, "add carries"},
		{"add with negative cardinality", []model.Mutation{{Op: model.OpAdd, Source: model.Source{Attributes: []string{"a"}, Cardinality: -5}}}, "negative cardinality"},
		{"remove negative ID", []model.Mutation{{Op: model.OpRemove, ID: -1}}, "outside"},
		{"remove with payload", []model.Mutation{{Op: model.OpRemove, ID: 0, Characteristics: map[string]float64{"x": 1}}}, "remove carries"},
		{"update changes nothing", []model.Mutation{{Op: model.OpUpdate, ID: 0}}, "changes nothing"},
		{"update negative cardinality", []model.Mutation{{Op: model.OpUpdate, ID: 0, Cardinality: &neg}}, "negative"},
		{"update with source", []model.Mutation{{Op: model.OpUpdate, ID: 0, Cardinality: &card, Source: model.Source{Attributes: []string{"a"}}}}, "carries an added source"},
	}
	for _, tc := range cases {
		if _, err := EncodeChurnRequest(tc.muts); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: encode error %v, want %q", tc.name, err, tc.want)
		}
		data, _ := json.Marshal(ChurnRequestDoc{Mutations: tc.muts})
		if _, err := DecodeChurnRequestBytes(data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: decode error %v, want %q", tc.name, err, tc.want)
		}
	}
	if _, err := DecodeChurnRequestBytes([]byte(`{"mutations":[{"op":"add","source":{"attributes":["a"]}}],"extra":1}`)); err == nil {
		t.Error("decode accepted an unknown envelope field")
	}
	if _, err := DecodeChurnRequestBytes([]byte(`not json`)); err == nil {
		t.Error("decode accepted non-JSON")
	}
}

func TestWALChurnRoundTrip(t *testing.T) {
	req, err := EncodeChurnRequest(churnBatch())
	if err != nil {
		t.Fatal(err)
	}
	d := &WALChurnDoc{Batch: 2, Request: req}
	data, err := EncodeWALChurn(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWALChurnBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Batch != 2 || string(got.Request) != string(req) {
		t.Fatalf("round-trip changed the payload: %+v", got)
	}
	for _, tc := range []struct {
		name string
		doc  WALChurnDoc
	}{
		{"zero batch", WALChurnDoc{Batch: 0, Request: req}},
		{"no request", WALChurnDoc{Batch: 1}},
		{"invalid request JSON", WALChurnDoc{Batch: 1, Request: []byte(`{`)}},
	} {
		if _, err := EncodeWALChurn(&tc.doc); err == nil {
			t.Errorf("%s: encode accepted it", tc.name)
		}
	}
}

func TestWALRecordAcceptsChurnType(t *testing.T) {
	rec := &WALRecordDoc{Seq: 4, Type: WALTypeChurn, Session: "s1", Data: json.RawMessage(`{"batch":1,"request":{"mutations":[]}}`)}
	data, err := EncodeWALRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWALRecordBytes(data); err != nil {
		t.Fatal(err)
	}
	rec.Data = nil
	if _, err := EncodeWALRecord(rec); err == nil || !strings.Contains(err.Error(), "no payload") {
		t.Errorf("churn record without payload: %v", err)
	}
}

func TestSnapshotChurnValidation(t *testing.T) {
	base := func() *SessionSnapshotDoc {
		return &SessionSnapshotDoc{
			ID:      "s1",
			Create:  json.RawMessage(`{"universe":{}}`),
			Problem: &ProblemDoc{},
			Solves:  0,
		}
	}
	req := json.RawMessage(`{"mutations":[{"op":"remove","id":0}]}`)

	d := base()
	d.Churn = []SnapshotChurnDoc{{AfterSolves: 0, Request: req}, {AfterSolves: 0, Request: req}}
	data, err := EncodeSessionSnapshot(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSessionSnapshotBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Churn) != 2 || string(got.Churn[1].Request) != string(req) {
		t.Fatalf("round-trip changed churn batches: %+v", got.Churn)
	}

	d = base()
	d.Churn = []SnapshotChurnDoc{{AfterSolves: 1, Request: req}}
	if _, err := EncodeSessionSnapshot(d); err == nil || !strings.Contains(err.Error(), "lands after") {
		t.Errorf("AfterSolves beyond Solves: %v", err)
	}

	d = base()
	d.Solves = 0
	d.Churn = []SnapshotChurnDoc{{AfterSolves: -1, Request: req}}
	if _, err := EncodeSessionSnapshot(d); err == nil {
		t.Error("negative AfterSolves accepted")
	}

	d = base()
	d.Churn = []SnapshotChurnDoc{{AfterSolves: 0}}
	if _, err := EncodeSessionSnapshot(d); err == nil || !strings.Contains(err.Error(), "no valid request") {
		t.Errorf("empty churn request: %v", err)
	}

	// Non-decreasing ordering across batches.
	d = base()
	d.Solves = 2
	d.History = []IterationDoc{{}, {}}
	d.Churn = []SnapshotChurnDoc{{AfterSolves: 2, Request: req}, {AfterSolves: 1, Request: req}}
	if _, err := EncodeSessionSnapshot(d); err == nil || !strings.Contains(err.Error(), "lands after") {
		t.Errorf("decreasing AfterSolves: %v", err)
	}
}
