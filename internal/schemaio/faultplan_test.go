package schemaio

import (
	"reflect"
	"strings"
	"testing"

	"ube/internal/faultinject"
)

func TestFaultPlanRoundTrip(t *testing.T) {
	plan := faultinject.Plan{
		Seed: 42,
		Entries: []faultinject.Entry{
			{Point: faultinject.WorkerPanic, Trigger: 3, Action: "panic", Repeat: 2},
			{Point: faultinject.WorkerStall, Trigger: 1, Action: "stall", Arg: 250},
			{Point: faultinject.SolveCancelMidway, Trigger: 2, Action: "cancel", Arg: 40},
		},
	}
	data, err := EncodeFaultPlan(&plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFaultPlanBytes(data)
	if err != nil {
		t.Fatalf("own output rejected: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(plan, back) {
		t.Errorf("round trip changed the plan:\nbefore %+v\nafter  %+v", plan, back)
	}
}

func TestDecodeFaultPlanRejects(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"not json", "not a plan"},
		{"unknown field", `{"seed":1,"entries":[],"extra":true}`},
		{"unknown point", `{"entries":[{"point":"queue.explode","trigger":1,"action":"reject"}]}`},
		{"wrong action", `{"entries":[{"point":"worker.panic","trigger":1,"action":"stall"}]}`},
		{"zero trigger", `{"entries":[{"point":"worker.panic","trigger":0,"action":"panic"}]}`},
		{"stall without arg", `{"entries":[{"point":"worker.stall","trigger":1,"action":"stall"}]}`},
		{"trailing content", `{"entries":[]} {"entries":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeFaultPlan(strings.NewReader(tc.input)); err == nil {
				t.Errorf("decoded: %s", tc.input)
			}
		})
	}
}

func TestEncodeFaultPlanValidates(t *testing.T) {
	bad := faultinject.Plan{Entries: []faultinject.Entry{{Point: "nope", Trigger: 1, Action: "x"}}}
	if _, err := EncodeFaultPlan(&bad); err == nil {
		t.Error("encoded an invalid plan")
	}
}

func TestProblemDecodeRejectsHostileDocs(t *testing.T) {
	big := make([]int, decodeListLimit+1)
	cases := []struct {
		name string
		doc  ProblemDoc
	}{
		{"nan theta", ProblemDoc{Theta: nan()}},
		{"inf weight", ProblemDoc{Weights: map[string]float64{"card": inf()}}},
		{"oversized initial sources", ProblemDoc{InitialSources: big}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.doc.Decode(); err == nil {
				t.Error("hostile document decoded")
			}
		})
	}
}

func TestSolutionDecodeRejectsHugeUniverse(t *testing.T) {
	doc := SolutionDoc{N: decodeUniverseLimit + 1}
	if _, err := doc.Decode(); err == nil {
		t.Error("oversized universe decoded")
	}
	neg := SolutionDoc{N: -1}
	if _, err := neg.Decode(); err == nil {
		t.Error("negative universe decoded")
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }
