package schemaio

// JSONL encoding for the tamper-evident audit chain (internal/auditlog):
// a header line, then one line per audit record (hash-chained) and one
// line per sealed batch (Merkle root, optionally HMAC-signed). The
// writer emits every line through the encoders here and the verifier
// re-renders each parsed line and requires byte equality, so any
// single-byte mutation of a committed chain — content, hashes, even
// whitespace — is detectable. Decoding is strict and never panics:
// ube-audit reads files from outside the process.

import (
	"encoding/json"
	"fmt"
)

// AuditChainDocName identifies an audit chain stream's header line.
const AuditChainDocName = "ube.audit.chain"

// AuditChainVersion is the current chain stream version.
const AuditChainVersion = 1

// Audit chain line kinds, carried in each line's "k" field so a reader
// can dispatch without guessing at field shapes.
const (
	AuditChainKindHeader = "h"
	AuditChainKindRecord = "r"
	AuditChainKindBatch  = "b"
)

// auditChainLineLimit caps one chain line; audit records are small
// (an action, a session ID, a detail map), so anything near this is a
// hostile or corrupt file.
const auditChainLineLimit = 1 << 20

// auditHashLen is the hex length of a SHA-256 digest.
const auditHashLen = 64

// AuditChainHeaderDoc is the first line of a chain stream.
type AuditChainHeaderDoc struct {
	K       string `json:"k"`
	Doc     string `json:"doc"`
	Version int    `json:"version"`
}

// AuditChainRecordDoc is one hash-chained audit record line. Record
// holds the audit entry verbatim; Leaf is the SHA-256 of the record
// bytes bound to Seq; Chain is the running hash linking this record to
// every record before it.
type AuditChainRecordDoc struct {
	K      string          `json:"k"`
	Seq    uint64          `json:"seq"`
	Record json.RawMessage `json:"record"`
	Leaf   string          `json:"leaf"`
	Chain  string          `json:"chain"`
}

// AuditChainBatchDoc seals records [From,To] under a Merkle root
// (Bitcoin-style levels over their leaf hashes). Sig, when present, is
// the hex HMAC-SHA256 of the root under the operator's key.
type AuditChainBatchDoc struct {
	K     string `json:"k"`
	Batch uint64 `json:"batch"`
	From  uint64 `json:"from"`
	To    uint64 `json:"to"`
	Root  string `json:"root"`
	Sig   string `json:"sig,omitempty"`
}

// AuditProofStepDoc is one inclusion-proof step: fold the sibling hash
// in from the right (or left) and move up a level.
type AuditProofStepDoc struct {
	Right   bool   `json:"right"`
	Sibling string `json:"sibling"`
}

// AuditProofDoc is a self-contained inclusion proof: the record bytes,
// their position, the fold path, and the sealed batch root the fold
// must land on. ube-audit check verifies one without the chain file.
type AuditProofDoc struct {
	Doc    string              `json:"doc"`
	Seq    uint64              `json:"seq"`
	Batch  uint64              `json:"batch"`
	Record json.RawMessage     `json:"record"`
	Steps  []AuditProofStepDoc `json:"steps"`
	Root   string              `json:"root"`
	Sig    string              `json:"sig,omitempty"`
}

// AuditProofDocName identifies a proof document.
const AuditProofDocName = "ube.audit.proof"

// auditProofStepLimit caps proof depth; 2^64 leaves need only 64 steps.
const auditProofStepLimit = 64

// EncodeAuditChainHeader renders the canonical header line, without the
// trailing newline.
func EncodeAuditChainHeader() []byte {
	data, err := json.Marshal(AuditChainHeaderDoc{K: AuditChainKindHeader, Doc: AuditChainDocName, Version: AuditChainVersion})
	if err != nil {
		panic("schemaio: static header doc failed to marshal: " + err.Error())
	}
	return data
}

// EncodeAuditChainRecord renders one record line (no trailing newline).
// The verifier re-renders through this same function and byte-compares,
// so the output must be deterministic: json.Marshal with fields in
// struct order and the record bytes embedded verbatim.
func EncodeAuditChainRecord(d *AuditChainRecordDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// EncodeAuditChainBatch renders one batch line (no trailing newline).
func EncodeAuditChainBatch(d *AuditChainBatchDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// EncodeAuditProof renders a proof document as compact JSON, newline
// terminated — the ube-audit prove output format. Compact, not
// indented: indentation would reformat the embedded record bytes, and
// the leaf hash is over those exact bytes.
func EncodeAuditProof(d *AuditProofDoc) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeAuditChainLine strictly parses one chain line, returning a
// *AuditChainHeaderDoc, *AuditChainRecordDoc or *AuditChainBatchDoc.
func DecodeAuditChainLine(line []byte) (any, error) {
	if len(line) > auditChainLineLimit {
		return nil, fmt.Errorf("schemaio: audit chain line is %d bytes, limit %d", len(line), auditChainLineLimit)
	}
	// Peek at the kind tag first (unknown fields allowed), then decode
	// strictly against the kind's own document shape.
	var kind struct {
		K string `json:"k"`
	}
	if err := json.Unmarshal(line, &kind); err != nil {
		return nil, fmt.Errorf("schemaio: audit chain line: %w", err)
	}
	switch kind.K {
	case AuditChainKindHeader:
		var d AuditChainHeaderDoc
		if err := decodeStrict(line, &d); err != nil {
			return nil, fmt.Errorf("schemaio: audit chain header: %w", err)
		}
		if d.Doc != AuditChainDocName {
			return nil, fmt.Errorf("schemaio: audit chain header doc %q, want %q", d.Doc, AuditChainDocName)
		}
		if d.Version != AuditChainVersion {
			return nil, fmt.Errorf("schemaio: audit chain version %d unsupported (want %d)", d.Version, AuditChainVersion)
		}
		return &d, nil
	case AuditChainKindRecord:
		var d AuditChainRecordDoc
		if err := decodeStrict(line, &d); err != nil {
			return nil, fmt.Errorf("schemaio: audit chain record: %w", err)
		}
		if err := d.validate(); err != nil {
			return nil, err
		}
		return &d, nil
	case AuditChainKindBatch:
		var d AuditChainBatchDoc
		if err := decodeStrict(line, &d); err != nil {
			return nil, fmt.Errorf("schemaio: audit chain batch: %w", err)
		}
		if err := d.validate(); err != nil {
			return nil, err
		}
		return &d, nil
	default:
		return nil, fmt.Errorf("schemaio: audit chain line has unknown kind %q", kind.K)
	}
}

// DecodeAuditProofBytes strictly parses a proof document.
func DecodeAuditProofBytes(data []byte) (*AuditProofDoc, error) {
	var d AuditProofDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: audit proof: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

func (d *AuditChainRecordDoc) validate() error {
	if d.K != AuditChainKindRecord {
		return fmt.Errorf("schemaio: audit chain record has kind %q, want %q", d.K, AuditChainKindRecord)
	}
	if d.Seq == 0 {
		return fmt.Errorf("schemaio: audit chain record has no sequence number (seq is 1-based)")
	}
	if len(d.Record) == 0 || !json.Valid(d.Record) {
		return fmt.Errorf("schemaio: audit chain record %d carries no valid record", d.Seq)
	}
	if !isHexDigest(d.Leaf) {
		return fmt.Errorf("schemaio: audit chain record %d leaf is not a %d-char hex digest", d.Seq, auditHashLen)
	}
	if !isHexDigest(d.Chain) {
		return fmt.Errorf("schemaio: audit chain record %d chain is not a %d-char hex digest", d.Seq, auditHashLen)
	}
	return nil
}

func (d *AuditChainBatchDoc) validate() error {
	if d.K != AuditChainKindBatch {
		return fmt.Errorf("schemaio: audit chain batch has kind %q, want %q", d.K, AuditChainKindBatch)
	}
	if d.From == 0 || d.To < d.From {
		return fmt.Errorf("schemaio: audit chain batch %d covers [%d,%d], which is not a valid 1-based range", d.Batch, d.From, d.To)
	}
	if !isHexDigest(d.Root) {
		return fmt.Errorf("schemaio: audit chain batch %d root is not a %d-char hex digest", d.Batch, auditHashLen)
	}
	if d.Sig != "" && !isHexDigest(d.Sig) {
		return fmt.Errorf("schemaio: audit chain batch %d sig is not a %d-char hex digest", d.Batch, auditHashLen)
	}
	return nil
}

// Validate checks a proof document's shape (the cryptographic fold is
// auditlog.CheckProof's job).
func (d *AuditProofDoc) Validate() error {
	if d.Doc != AuditProofDocName {
		return fmt.Errorf("schemaio: audit proof doc %q, want %q", d.Doc, AuditProofDocName)
	}
	if d.Seq == 0 {
		return fmt.Errorf("schemaio: audit proof has no sequence number")
	}
	if len(d.Record) == 0 || !json.Valid(d.Record) {
		return fmt.Errorf("schemaio: audit proof carries no valid record")
	}
	if len(d.Steps) > auditProofStepLimit {
		return fmt.Errorf("schemaio: audit proof has %d steps, limit %d", len(d.Steps), auditProofStepLimit)
	}
	for i, s := range d.Steps {
		if !isHexDigest(s.Sibling) {
			return fmt.Errorf("schemaio: audit proof step %d sibling is not a %d-char hex digest", i, auditHashLen)
		}
	}
	if !isHexDigest(d.Root) {
		return fmt.Errorf("schemaio: audit proof root is not a %d-char hex digest", auditHashLen)
	}
	if d.Sig != "" && !isHexDigest(d.Sig) {
		return fmt.Errorf("schemaio: audit proof sig is not a %d-char hex digest", auditHashLen)
	}
	return nil
}

// isHexDigest reports whether s is exactly one lowercase-hex SHA-256.
func isHexDigest(s string) bool {
	if len(s) != auditHashLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
