package schemaio

// JSON round-trip for chaos fault plans (internal/faultinject): the
// on-disk form of the schedules committed under testdata/chaosplans and
// accepted by ube-serve -fault-plan and ube-load -chaos. Decoding is
// strict — unknown fields, trailing garbage and invalid schedules are
// all errors — so a typo in a plan fails a chaos run loudly instead of
// silently disarming it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ube/internal/faultinject"
)

// EncodeFaultPlan renders a validated plan as indented JSON, newline
// terminated — the exact form the committed plan fixtures use.
func EncodeFaultPlan(p *faultinject.Plan) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFaultPlan parses and validates one plan document.
func DecodeFaultPlan(r io.Reader) (faultinject.Plan, error) {
	var p faultinject.Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return faultinject.Plan{}, fmt.Errorf("schemaio: decoding fault plan: %w", err)
	}
	// A plan is one document; trailing content is a malformed file, not
	// a second schedule.
	if dec.More() {
		return faultinject.Plan{}, fmt.Errorf("schemaio: fault plan has trailing content")
	}
	if err := p.Validate(); err != nil {
		return faultinject.Plan{}, err
	}
	return p, nil
}

// DecodeFaultPlanBytes is DecodeFaultPlan over a byte slice.
func DecodeFaultPlanBytes(data []byte) (faultinject.Plan, error) {
	return DecodeFaultPlan(bytes.NewReader(data))
}
