package schemaio

// JSON codec for universe mutation (churn) batches: the body of the
// service's PATCH /v1/sessions/{id}/universe endpoint, the payload of
// session.churn WAL records, and the churn entries inside session
// snapshots. Like every decoder in this package it sits on a trust
// boundary and is strict: unknown fields, unknown ops, oversized lists
// and shape-invalid mutations are errors, never panics.

import (
	"encoding/json"
	"fmt"

	"ube/internal/model"
)

// churnAttrLimit caps one attribute name inside a churn add; normalized
// schema attribute names are short, so anything longer is hostile.
const churnAttrLimit = 1 << 12

// ChurnRequestDoc is one universe mutation batch. The batch applies
// atomically and sequentially (each mutation's ID refers to the state
// after the preceding mutations); see model.Mutation.
type ChurnRequestDoc struct {
	Mutations []model.Mutation `json:"mutations"`
}

// EncodeChurnRequest renders a churn batch as JSON.
func EncodeChurnRequest(muts []model.Mutation) ([]byte, error) {
	d := ChurnRequestDoc{Mutations: muts}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(&d)
}

// DecodeChurnRequestBytes strictly parses a churn batch.
func DecodeChurnRequestBytes(data []byte) ([]model.Mutation, error) {
	var d ChurnRequestDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: churn request: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d.Mutations, nil
}

func (d *ChurnRequestDoc) validate() error {
	if len(d.Mutations) == 0 {
		return fmt.Errorf("schemaio: churn request has no mutations")
	}
	if len(d.Mutations) > decodeListLimit {
		return fmt.Errorf("schemaio: churn request has %d mutations, limit %d", len(d.Mutations), decodeListLimit)
	}
	for i := range d.Mutations {
		m := &d.Mutations[i]
		switch m.Op {
		case model.OpAdd:
			if m.ID != 0 || m.Cardinality != nil || m.Characteristics != nil {
				return fmt.Errorf("schemaio: churn mutation %d: add carries update/remove fields", i)
			}
			s := &m.Source
			if len(s.Attributes) == 0 {
				return fmt.Errorf("schemaio: churn mutation %d: added source has no attributes", i)
			}
			if len(s.Attributes) > decodeListLimit {
				return fmt.Errorf("schemaio: churn mutation %d: added source has %d attributes, limit %d", i, len(s.Attributes), decodeListLimit)
			}
			for a, name := range s.Attributes {
				if name == "" || len(name) > churnAttrLimit {
					return fmt.Errorf("schemaio: churn mutation %d: attribute %d has length %d outside [1,%d]", i, a, len(name), churnAttrLimit)
				}
			}
			if s.AttrSignatures != nil && len(s.AttrSignatures) != len(s.Attributes) {
				return fmt.Errorf("schemaio: churn mutation %d: %d attribute signatures for %d attributes", i, len(s.AttrSignatures), len(s.Attributes))
			}
			if s.Cardinality < 0 {
				return fmt.Errorf("schemaio: churn mutation %d: added source has negative cardinality %d", i, s.Cardinality)
			}
			if len(s.Characteristics) > decodeListLimit {
				return fmt.Errorf("schemaio: churn mutation %d: added source has %d characteristics, limit %d", i, len(s.Characteristics), decodeListLimit)
			}
		case model.OpRemove:
			if m.ID < 0 || m.ID > decodeUniverseLimit {
				return fmt.Errorf("schemaio: churn mutation %d: remove ID %d outside [0,%d]", i, m.ID, decodeUniverseLimit)
			}
			if len(m.Source.Attributes) != 0 || m.Cardinality != nil || m.Characteristics != nil {
				return fmt.Errorf("schemaio: churn mutation %d: remove carries add/update fields", i)
			}
		case model.OpUpdate:
			if m.ID < 0 || m.ID > decodeUniverseLimit {
				return fmt.Errorf("schemaio: churn mutation %d: update ID %d outside [0,%d]", i, m.ID, decodeUniverseLimit)
			}
			if len(m.Source.Attributes) != 0 {
				return fmt.Errorf("schemaio: churn mutation %d: update carries an added source", i)
			}
			if m.Cardinality == nil && m.Characteristics == nil {
				return fmt.Errorf("schemaio: churn mutation %d: update changes nothing", i)
			}
			if m.Cardinality != nil && *m.Cardinality < 0 {
				return fmt.Errorf("schemaio: churn mutation %d: update cardinality %d is negative", i, *m.Cardinality)
			}
			if len(m.Characteristics) > decodeListLimit {
				return fmt.Errorf("schemaio: churn mutation %d: update has %d characteristics, limit %d", i, len(m.Characteristics), decodeListLimit)
			}
		default:
			return fmt.Errorf("schemaio: churn mutation %d: unknown op %q", i, m.Op)
		}
	}
	return nil
}

// WALChurnDoc is the payload of a session.churn record: the session's
// 1-based churn ordinal and the client's request body, verbatim —
// replay re-decodes and re-applies it through the same Session.ApplyChurn
// path the live request took, reproducing the engine's incremental state
// bit-identically (the differential churn suite's guarantee).
type WALChurnDoc struct {
	Batch   int             `json:"batch"`
	Request json.RawMessage `json:"request"`
}

// EncodeWALChurn renders a churn payload.
func EncodeWALChurn(d *WALChurnDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// DecodeWALChurnBytes strictly parses a churn payload.
func DecodeWALChurnBytes(data []byte) (*WALChurnDoc, error) {
	var d WALChurnDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: wal churn payload: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

func (d *WALChurnDoc) validate() error {
	if d.Batch < 1 || d.Batch > walHistoryLimit {
		return fmt.Errorf("schemaio: wal churn batch ordinal %d outside [1,%d]", d.Batch, walHistoryLimit)
	}
	if len(d.Request) == 0 {
		return fmt.Errorf("schemaio: wal churn payload has no request")
	}
	if !json.Valid(d.Request) {
		return fmt.Errorf("schemaio: wal churn request is not valid JSON")
	}
	return nil
}

// SnapshotChurnDoc is one churn batch inside a session snapshot, tagged
// with the number of committed solves that preceded it so restoration
// knows whether the session's warm start was churn-repaired after its
// last solve.
type SnapshotChurnDoc struct {
	AfterSolves int             `json:"afterSolves"`
	Request     json.RawMessage `json:"request"`
}
