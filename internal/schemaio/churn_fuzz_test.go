package schemaio

import (
	"testing"

	"ube/internal/engine"
	"ube/internal/model"
)

// churnFuzzUniverse hand-builds a tiny universe (engine construction runs
// once per fuzz iteration, so it must be cheap — no synthesizer, no
// signatures).
func churnFuzzUniverse() *model.Universe {
	mk := func(id int, name string, attrs ...string) model.Source {
		return model.Source{
			ID:              id,
			Name:            name,
			Attributes:      attrs,
			Cardinality:     int64(100 * (id + 1)),
			Characteristics: map[string]float64{"mttf": float64(50 + 10*id)},
		}
	}
	return &model.Universe{Sources: []model.Source{
		mk(0, "alpha", "title", "author"),
		mk(1, "beta", "title", "isbn"),
		mk(2, "gamma", "isbn", "price"),
		mk(3, "delta", "author", "year"),
	}}
}

// FuzzChurnSchedule drives the full churn trust boundary: arbitrary bytes
// through the strict churn-request decode the server performs on
// PATCH /v1/sessions/{id}/universe, then — when the batch decodes — the
// decoded mutations through Session.ApplyChurn on a live engine.
// Duplicate adds, removes of unknown sources, unicode attribute names and
// shape garbage must either come back as errors or apply cleanly: never a
// panic, and never a desynchronized universe (the post-apply state must
// still Validate and the session must still solve).
//
// Run continuously in CI's fuzz job:
//
//	go test -fuzz=FuzzChurnSchedule -fuzztime=30s ./internal/schemaio
func FuzzChurnSchedule(f *testing.F) {
	f.Add([]byte(`{"mutations":[{"op":"add","source":{"attributes":["title"],"cardinality":10}}]}`))
	f.Add([]byte(`{"mutations":[{"op":"add","source":{"name":"dup","attributes":["a"]}},{"op":"add","source":{"name":"dup","attributes":["a"]}}]}`))
	f.Add([]byte(`{"mutations":[{"op":"remove","id":99}]}`))
	f.Add([]byte(`{"mutations":[{"op":"remove","id":0},{"op":"remove","id":0},{"op":"remove","id":0},{"op":"remove","id":0}]}`))
	f.Add([]byte(`{"mutations":[{"op":"update","id":2,"cardinality":7,"characteristics":{"mttf":1.5}}]}`))
	f.Add([]byte("{\"mutations\":[{\"op\":\"add\",\"source\":{\"name\":\"\u00fcn\u00efcode\",\"attributes\":[\"ti tle\",\"\u65e5\u672c\u8a9e\",\"\U0001f989\"]}}]}"))
	f.Add([]byte(`{"mutations":[{"op":"update","id":0,"cardinality":-1}]}`))
	f.Add([]byte(`{"mutations":[{"op":"rename","id":0}]}`))
	f.Add([]byte(`{"mutations":[]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		muts, err := DecodeChurnRequestBytes(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		eng, err := engine.New(churnFuzzUniverse())
		if err != nil {
			t.Fatalf("building the fixed universe: %v", err)
		}
		prob := engine.DefaultProblem()
		prob.MaxSources = 2
		prob.MaxEvals = 50
		sess := engine.NewSession(eng, prob)
		if _, err := sess.ApplyChurn(muts); err != nil {
			return // engine-level rejection (e.g. out-of-range ID) is fine
		}
		if err := eng.Universe().Validate(); err != nil {
			t.Fatalf("accepted churn left an invalid universe: %v\ninput: %q", err, data)
		}
		if eng.Universe().N() == 0 {
			return // churn may legally drain the universe; nothing to solve
		}
		if _, err := sess.Solve(); err != nil {
			t.Fatalf("session cannot solve after accepted churn: %v\ninput: %q", err, data)
		}
	})
}
