package schemaio

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzServerDecode drives the service's JSON trust boundary: arbitrary
// bytes through the strict ProblemDoc decode the server performs on
// session-create and solve payloads. Malformed constraints, non-finite
// numerics and oversized lists must come back as errors — never panics,
// never unbounded allocations — and any accepted problem must have a
// JSON form again (the server re-encodes it for the problem mirror).
//
// Run continuously in CI's fuzz job:
//
//	go test -fuzz=FuzzServerDecode -fuzztime=30s ./internal/schemaio
func FuzzServerDecode(f *testing.F) {
	f.Add([]byte(`{"maxSources":5,"theta":0.65,"beta":2,"constraints":{},"seed":1}`))
	f.Add([]byte(`{"maxSources":5,"theta":0.65,"beta":2,"constraints":{"sources":[0,1],"gas":[[{"source":0,"attr":1}]]},"weights":{"match":0.5,"card":0.5},"seed":1}`))
	f.Add([]byte(`{"maxSources":5,"theta":1e308,"beta":2,"constraints":{},"seed":1,"optimizer":"tabu"}`))
	f.Add([]byte(`{"maxSources":-1,"theta":-0.5,"beta":0,"constraints":{"exclude":[-9]},"seed":-1}`))
	f.Add([]byte(`{"weights":{"":-1e308}}`))
	f.Add([]byte(`{"characteristics":{"mttf":"nosuch"}}`))
	f.Add([]byte(`{"initialSources":[0,0,0,0,0,0,0,0,0,0,0,0]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var doc ProblemDoc
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if dec.Decode(&doc) != nil {
			return // rejection is fine; panics are not
		}
		p, err := doc.Decode()
		if err != nil {
			return
		}
		if _, err := EncodeProblem(&p); err != nil {
			t.Fatalf("accepted problem has no JSON form: %v\ninput: %q", err, data)
		}
	})
}
