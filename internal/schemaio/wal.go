package schemaio

// JSON documents carried inside write-ahead-log frames (internal/wal):
// the record envelope, the solve commit payload, and the self-contained
// session snapshot. Like the trace codec, these decoders sit on a trust
// boundary — recovery reads whatever survived a crash on disk — so they
// are strict (unknown fields, trailing data, impossible sizes and
// malformed lifecycle records are all errors) and never panic.

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// WAL record types — the closed lifecycle vocabulary. A frame whose
// envelope names anything else is corruption, not a forward-compatible
// extension: recovery must refuse to guess at history.
const (
	WALTypeCreate     = "session.create"
	WALTypeSolve      = "session.solve"
	WALTypeChurn      = "session.churn"
	WALTypeSnapshot   = "session.snapshot"
	WALTypeDelete     = "session.delete"
	WALTypeEvict      = "session.evict"
	WALTypeCheckpoint = "checkpoint"
)

// walTypes is the closed set, for validation.
var walTypes = map[string]bool{
	WALTypeCreate:     true,
	WALTypeSolve:      true,
	WALTypeChurn:      true,
	WALTypeSnapshot:   true,
	WALTypeDelete:     true,
	WALTypeEvict:      true,
	WALTypeCheckpoint: true,
}

// walDataLimit caps a record's embedded payload. Create requests carry
// whole universes, so the bound matches the HTTP body bound (64 MiB)
// plus envelope slack.
const walDataLimit = 64 << 20

// walSessionLimit caps a session ID; the server only ever mints short
// "s<n>" names.
const walSessionLimit = 256

// walHistoryLimit caps the iteration count a snapshot may declare.
const walHistoryLimit = 1 << 20

// WALRecordDoc is the JSON envelope inside every WAL frame: a global
// sequence number, the lifecycle type, the owning session (empty only
// for checkpoints) and the type-specific payload.
type WALRecordDoc struct {
	Seq     uint64 `json:"seq"`
	Type    string `json:"type"`
	Session string `json:"session,omitempty"`
	//ube:operational commit wall-clock, for operators reading a log; replay never consults it
	TS   int64           `json:"ts,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// EncodeWALRecord renders the envelope as compact JSON — the exact bytes
// framed into the log.
func EncodeWALRecord(d *WALRecordDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// DecodeWALRecordBytes strictly parses one framed envelope.
func DecodeWALRecordBytes(data []byte) (*WALRecordDoc, error) {
	var d WALRecordDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: wal record: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

func (d *WALRecordDoc) validate() error {
	if d.Seq == 0 {
		return fmt.Errorf("schemaio: wal record has no sequence number (seq is 1-based)")
	}
	if !walTypes[d.Type] {
		return fmt.Errorf("schemaio: wal record %d has unknown type %q", d.Seq, d.Type)
	}
	if len(d.Session) > walSessionLimit {
		return fmt.Errorf("schemaio: wal record %d session ID is %d bytes, limit %d", d.Seq, len(d.Session), walSessionLimit)
	}
	if d.Type == WALTypeCheckpoint {
		if d.Session != "" {
			return fmt.Errorf("schemaio: wal checkpoint record %d names session %q", d.Seq, d.Session)
		}
	} else if d.Session == "" {
		return fmt.Errorf("schemaio: wal %s record %d has no session", d.Type, d.Seq)
	}
	switch d.Type {
	case WALTypeCreate, WALTypeSolve, WALTypeChurn, WALTypeSnapshot:
		if len(d.Data) == 0 {
			return fmt.Errorf("schemaio: wal %s record %d has no payload", d.Type, d.Seq)
		}
	}
	if len(d.Data) > walDataLimit {
		return fmt.Errorf("schemaio: wal record %d payload is %d bytes, limit %d", d.Seq, len(d.Data), walDataLimit)
	}
	if d.TS < 0 {
		return fmt.Errorf("schemaio: wal record %d has negative timestamp %d", d.Seq, d.TS)
	}
	return nil
}

// WALSolveDoc is the payload of a session.solve record: the history
// index the committed solve produced and the client's request body,
// verbatim — replay re-decodes and re-applies it through the same edit
// path the live solve took. The solve result itself is never stored
// (it is a pure function of problem and seed), but the live solve's
// operational telemetry — wall-clock time and match-cache counters —
// is not, so the record carries the observed values and replay patches
// them into the re-solved result to keep recovered histories
// bit-identical with what the live server served.
type WALSolveDoc struct {
	Iteration int             `json:"iteration"`
	Request   json.RawMessage `json:"request"`
	//ube:operational observed live-solve telemetry; never solver input
	ElapsedNS      int64 `json:"elapsedNs,omitempty"`
	CacheHits      int64 `json:"cacheHits,omitempty"`
	CacheMisses    int64 `json:"cacheMisses,omitempty"`
	CacheEvictions int64 `json:"cacheEvictions,omitempty"`
}

// EncodeWALSolve renders a solve payload.
func EncodeWALSolve(d *WALSolveDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// DecodeWALSolveBytes strictly parses a solve payload.
func DecodeWALSolveBytes(data []byte) (*WALSolveDoc, error) {
	var d WALSolveDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: wal solve payload: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

func (d *WALSolveDoc) validate() error {
	if d.Iteration < 0 || d.Iteration > walHistoryLimit {
		return fmt.Errorf("schemaio: wal solve iteration %d outside [0,%d]", d.Iteration, walHistoryLimit)
	}
	if len(d.Request) == 0 {
		return fmt.Errorf("schemaio: wal solve payload has no request")
	}
	if !json.Valid(d.Request) {
		return fmt.Errorf("schemaio: wal solve request is not valid JSON")
	}
	if d.ElapsedNS < 0 || d.CacheHits < 0 || d.CacheMisses < 0 || d.CacheEvictions < 0 {
		return fmt.Errorf("schemaio: wal solve payload has negative telemetry")
	}
	return nil
}

// SessionSnapshotDoc is the payload of a session.snapshot record: a
// fully self-contained session state, so a snapshot both bounds replay
// (solves it covers need not re-run) and anchors truncation (segments
// older than a checkpoint full of these can be deleted).
//
// Create holds the original create-request bytes (universe/schemas and
// starting problem) from which the engine is rebuilt; Problem is the
// current problem (seed already advanced past Solves iterations);
// History is the exact document mirror of the committed iterations.
type SessionSnapshotDoc struct {
	ID      string          `json:"id"`
	Create  json.RawMessage `json:"create"`
	Problem *ProblemDoc     `json:"problem"`
	History []IterationDoc  `json:"history,omitempty"`
	Solves  int             `json:"solves"`
	// Churn lists every committed universe-mutation batch in order, each
	// tagged with the solve count it landed after; restoration replays
	// them against the rebuilt engine before re-attaching History.
	Churn []SnapshotChurnDoc `json:"churn,omitempty"`
}

// EncodeSessionSnapshot renders a snapshot payload.
func EncodeSessionSnapshot(d *SessionSnapshotDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// DecodeSessionSnapshotBytes strictly parses a snapshot payload.
func DecodeSessionSnapshotBytes(data []byte) (*SessionSnapshotDoc, error) {
	var d SessionSnapshotDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: session snapshot: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

func (d *SessionSnapshotDoc) validate() error {
	if d.ID == "" || len(d.ID) > walSessionLimit {
		return fmt.Errorf("schemaio: session snapshot ID length %d outside [1,%d]", len(d.ID), walSessionLimit)
	}
	if len(d.Create) == 0 || !json.Valid(d.Create) {
		return fmt.Errorf("schemaio: session snapshot %s has no valid create request", d.ID)
	}
	if len(d.Create) > walDataLimit {
		return fmt.Errorf("schemaio: session snapshot %s create request is %d bytes, limit %d", d.ID, len(d.Create), walDataLimit)
	}
	if d.Problem == nil {
		return fmt.Errorf("schemaio: session snapshot %s has no current problem", d.ID)
	}
	if d.Solves < 0 || d.Solves > walHistoryLimit {
		return fmt.Errorf("schemaio: session snapshot %s declares %d solves, limit %d", d.ID, d.Solves, walHistoryLimit)
	}
	if len(d.History) != d.Solves {
		return fmt.Errorf("schemaio: session snapshot %s carries %d history entries but declares %d solves", d.ID, len(d.History), d.Solves)
	}
	if len(d.Churn) > walHistoryLimit {
		return fmt.Errorf("schemaio: session snapshot %s carries %d churn batches, limit %d", d.ID, len(d.Churn), walHistoryLimit)
	}
	prev := 0
	for i, cb := range d.Churn {
		if cb.AfterSolves < prev || cb.AfterSolves > d.Solves {
			return fmt.Errorf("schemaio: session snapshot %s churn batch %d lands after %d solves (previous %d, total %d)", d.ID, i, cb.AfterSolves, prev, d.Solves)
		}
		prev = cb.AfterSolves
		if len(cb.Request) == 0 || !json.Valid(cb.Request) {
			return fmt.Errorf("schemaio: session snapshot %s churn batch %d has no valid request", d.ID, i)
		}
	}
	return nil
}

// WALCheckpointDoc is the payload of a checkpoint record: the live
// session IDs whose snapshots immediately precede it in the same
// segment. Older segments are superseded once this record is durable.
type WALCheckpointDoc struct {
	Sessions []string `json:"sessions"`
}

// EncodeWALCheckpoint renders a checkpoint payload.
func EncodeWALCheckpoint(d *WALCheckpointDoc) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// DecodeWALCheckpointBytes strictly parses a checkpoint payload.
func DecodeWALCheckpointBytes(data []byte) (*WALCheckpointDoc, error) {
	var d WALCheckpointDoc
	if err := decodeStrict(data, &d); err != nil {
		return nil, fmt.Errorf("schemaio: wal checkpoint: %w", err)
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

func (d *WALCheckpointDoc) validate() error {
	if len(d.Sessions) > decodeListLimit {
		return fmt.Errorf("schemaio: wal checkpoint lists %d sessions, limit %d", len(d.Sessions), decodeListLimit)
	}
	for i, id := range d.Sessions {
		if id == "" || len(id) > walSessionLimit {
			return fmt.Errorf("schemaio: wal checkpoint session %d has ID length %d outside [1,%d]", i, len(id), walSessionLimit)
		}
	}
	return nil
}

// CompactJSON canonicalizes raw JSON to its compact form — the form the
// WAL and audit chain hash and store. It rejects invalid JSON.
func CompactJSON(raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, fmt.Errorf("schemaio: compacting JSON: %w", err)
	}
	return buf.Bytes(), nil
}
