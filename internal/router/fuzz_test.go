package router

import (
	"bytes"
	"encoding/json"
	"testing"
)

func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return string(raw)
	}
	return buf.String()
}

// FuzzRouterDecode fuzzes the one place the router interprets request
// bytes: the create-body ID extraction and rewrite. The router is
// otherwise an opaque proxy, so this is its whole parsing attack
// surface. Invariants: never panic; acceptance is consistent (a body
// extractCreateID accepts, rewriteCreateBody must also accept); the
// rewritten body is valid JSON whose id is exactly the minted one and
// whose other top-level fields survive byte-for-byte.
func FuzzRouterDecode(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"id":"alpha"}`,
		`{"id":""}`,
		`{"universe":{"sources":[{"name":"s0"}]},"problem":{"maxSources":5}}`,
		`{"id":"g17","problem":{"theta":0.85,"seed":9007199254740993}}`,
		`{"id":17}`,
		`{"id":null}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"a":1}{"b":2}`,
		`{"nested":{"id":"inner"},"id":"outer"}`,
		`{"big":1e308,"tiny":5e-324,"neg":-0.0}`,
		`{"unicode":"ü😀"}`,
		``,
		`{`,
		`{"id":"x","id":"y"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if _, err := extractCreateID(raw); err != nil {
			// Rejected up front (400): the rewrite is never reached,
			// but it must still not panic on the same bytes.
			_, _ = rewriteCreateBody(raw, "g1")
			return
		}
		out, err := rewriteCreateBody(raw, "g42")
		if err != nil {
			t.Fatalf("extract accepted but rewrite rejected (%v): %q", err, raw)
		}
		// The rewritten body must round-trip with the minted ID.
		got, err := extractCreateID(out)
		if err != nil {
			t.Fatalf("rewritten body unreadable (%v): %q", err, out)
		}
		if got != "g42" {
			t.Fatalf("rewritten id %q, want g42 (from %q)", got, raw)
		}
		// Non-id top-level fields pass through intact modulo
		// whitespace: the router must not reshape numbers, escapes,
		// or nesting (compaction is the only legal transformation).
		var before, after map[string]json.RawMessage
		if err := json.Unmarshal(raw, &before); err == nil {
			if err := json.Unmarshal(out, &after); err != nil {
				t.Fatalf("rewritten body not an object: %q", out)
			}
			for k, v := range before {
				if k == "id" {
					continue
				}
				if compactJSON(t, after[k]) != compactJSON(t, v) {
					t.Fatalf("field %q reshaped: %q → %q", k, v, after[k])
				}
			}
		}
	})
}
