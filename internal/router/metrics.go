package router

import "sync/atomic"

// routerMetrics are the router's own counters, kept separate from the
// shard metrics it aggregates. The chaos suite reconciles these against
// per-shard audit lines: every solve the router counted as routed must
// appear in exactly one shard's audit chain, and every rejection it
// counted must NOT.
type routerMetrics struct {
	proxied        atomic.Int64 // responses relayed from shards
	proxyErrors    atomic.Int64 // transport failures talking to shards
	createsMinted  atomic.Int64 // sessions created under router-minted IDs
	createRetries  atomic.Int64 // minted-ID 409 collisions re-minted
	createRejects  atomic.Int64 // creates refused (no usable shard)
	solvesRouted   atomic.Int64 // solve responses relayed with status 200
	solveRejects   atomic.Int64 // solves the router refused or failed to relay
	shardKills     atomic.Int64 // router.shard-kill firings (+ operator kills)
	partitionDrops atomic.Int64 // router.partition firings

	perShard map[string]*shardCounters
}

type shardCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

func newRouterMetrics(shards []string) *routerMetrics {
	m := &routerMetrics{perShard: make(map[string]*shardCounters, len(shards))}
	for _, s := range shards {
		m.perShard[s] = &shardCounters{}
	}
	return m
}

// forShard returns the counters for shard; the map is fixed at
// construction so lookups are lock-free.
func (m *routerMetrics) forShard(shard string) *shardCounters {
	if c := m.perShard[shard]; c != nil {
		return c
	}
	return &shardCounters{} // unknown shard: count into a throwaway
}

// routerCountersDoc is the JSON shape of the router-owned counters in
// the aggregated /metrics document.
type routerCountersDoc struct {
	Proxied        int64                     `json:"proxied"`
	ProxyErrors    int64                     `json:"proxyErrors"`
	CreatesMinted  int64                     `json:"createsMinted"`
	CreateRetries  int64                     `json:"createRetries"`
	CreateRejects  int64                     `json:"createRejects"`
	SolvesRouted   int64                     `json:"solvesRouted"`
	SolveRejects   int64                     `json:"solveRejects"`
	ShardKills     int64                     `json:"shardKills"`
	PartitionDrops int64                     `json:"partitionDrops"`
	HealthyShards  int                       `json:"healthyShards"`
	TotalShards    int                       `json:"totalShards"`
	PerShard       map[string]shardStatusDoc `json:"perShard"`
}

type shardStatusDoc struct {
	Healthy  bool  `json:"healthy"`
	Killed   bool  `json:"killed,omitempty"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
}

func (m *routerMetrics) snapshot(h *healthTracker) routerCountersDoc {
	doc := routerCountersDoc{
		Proxied:        m.proxied.Load(),
		ProxyErrors:    m.proxyErrors.Load(),
		CreatesMinted:  m.createsMinted.Load(),
		CreateRetries:  m.createRetries.Load(),
		CreateRejects:  m.createRejects.Load(),
		SolvesRouted:   m.solvesRouted.Load(),
		SolveRejects:   m.solveRejects.Load(),
		ShardKills:     m.shardKills.Load(),
		PartitionDrops: m.partitionDrops.Load(),
		PerShard:       make(map[string]shardStatusDoc, len(m.perShard)),
	}
	doc.HealthyShards, doc.TotalShards = h.healthyCount()
	//ube:nondeterministic-ok building a keyed JSON object; serialization sorts keys
	for shard, c := range m.perShard {
		st := h.state(shard)
		doc.PerShard[shard] = shardStatusDoc{
			Healthy:  h.usable(shard),
			Killed:   st != nil && st.killed.Load(),
			Requests: c.requests.Load(),
			Errors:   c.errors.Load(),
		}
	}
	return doc
}
