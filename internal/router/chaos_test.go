package router

// Router chaos: the committed plans under testdata/chaosplans arm the
// router.* fault points while a single-threaded scripted workload runs,
// so every firing is a pure function of solve arrival order and a
// failing run replays exactly from seed + plan. The invariants:
//
//  1. Surviving sessions (homed off the killed shard, or retried past
//     the partition) end bit-identical to a fault-free reference run.
//  2. Sessions on a killed shard get clean 503 + Retry-After JSON
//     errors, and their shard-local history is an intact prefix of the
//     reference — never a torn iteration.
//  3. The router's counters reconcile with the shards' audit logs:
//     every solve the router counted as routed is exactly one
//     solve.done audit line on exactly one shard.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ube/internal/faultinject"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
)

func loadRouterPlan(t *testing.T, name string) faultinject.Plan {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "chaosplans", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schemaio.DecodeFaultPlanBytes(data)
	if err != nil {
		t.Fatalf("plan %s: %v", name, err)
	}
	return plan
}

// chaosCtx renders the replay context every chaos failure embeds.
func chaosCtx(plan faultinject.Plan, rt *Router, users []string) string {
	data, _ := schemaio.EncodeFaultPlan(&plan)
	return "seed " + strconv.FormatInt(plan.Seed, 10) + ", plan:\n" + string(data) + "shard map: " + shardMap(rt, users)
}

// referenceHistories runs the scripted workload fault-free on a single
// unsharded server: per-session determinism makes its histories the
// reference for every topology.
func referenceHistories(t *testing.T, u *model.Universe, users []string, iters int) map[string]string {
	t.Helper()
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, id := range users {
		createWithID(t, ts.URL, u, id)
	}
	for k := 0; k < iters; k++ {
		for _, id := range users {
			if resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/solve", map[string]any{}); resp.StatusCode != http.StatusOK {
				t.Fatalf("reference solve %s/%d: %d %s", id, k, resp.StatusCode, body)
			}
		}
	}
	out := make(map[string]string, len(users))
	for _, id := range users {
		out[id] = canonicalHistory(t, fetchHistory(t, ts.URL, id))
	}
	return out
}

func TestChaosShardKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos workload is slow")
	}
	u := testUniverse(t, testUniverseN)
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	const iters = 3
	ref := referenceHistories(t, u, users, iters)

	plan := loadRouterPlan(t, "shard_kill")
	inj := faultinject.MustNew(plan)
	fleet := startShards(t, 3, server.Config{})
	rt, base := startRouter(t, fleet, Config{FaultInjector: inj})

	for _, id := range users {
		createWithID(t, base, u, id)
	}
	// Single-threaded, fixed order: solve arrival k is users[(k-1)%6],
	// iteration (k-1)/6 — so the plan's trigger names one exact solve.
	rejected := 0
	for k := 0; k < iters; k++ {
		for _, id := range users {
			resp, body := postJSON(t, base+"/v1/sessions/"+id+"/solve", map[string]any{})
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusServiceUnavailable:
				rejected++
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("503 without Retry-After for %s/%d\n%s", id, k, chaosCtx(plan, rt, users))
				}
				if !strings.Contains(string(body), `"error"`) {
					t.Errorf("503 body is not a clean JSON error: %q\n%s", body, chaosCtx(plan, rt, users))
				}
			default:
				t.Fatalf("solve %s/%d: unexpected %d %s\n%s", id, k, resp.StatusCode, body, chaosCtx(plan, rt, users))
			}
		}
	}
	if inj.FiredCount(faultinject.RouterShardKill) != 1 {
		t.Fatalf("shard-kill fired %d times, want 1\n%s", inj.FiredCount(faultinject.RouterShardKill), chaosCtx(plan, rt, users))
	}

	// Identify the killed shard from aggregated health.
	var hz healthzDoc
	getJSON(t, base+"/healthz", &hz)
	killed := ""
	for shard, st := range hz.Shards {
		if st.Killed {
			killed = shard
		}
	}
	if killed == "" || hz.Status != "degraded" || hz.HealthyShards != 2 {
		t.Fatalf("healthz after kill: %+v\n%s", hz, chaosCtx(plan, rt, users))
	}

	survivors, victims := 0, 0
	for _, id := range users {
		if rt.ring.Lookup(id) != killed {
			// Invariant 1: survivors are bit-identical to the reference.
			survivors++
			if got := canonicalHistory(t, fetchHistory(t, base, id)); got != ref[id] {
				t.Errorf("survivor %s diverged from reference\n%s\nref: %s\ngot: %s", id, chaosCtx(plan, rt, users), ref[id], got)
			}
			continue
		}
		victims++
		// Invariant 2: routed requests for victim sessions 503 cleanly…
		resp := getJSON(t, base+"/v1/sessions/"+id+"/history", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("victim %s history via router: %d, want 503\n%s", id, resp.StatusCode, chaosCtx(plan, rt, users))
		}
		// …while the shard-local history is an intact prefix of the
		// reference (the kill routed around the shard, it did not
		// corrupt it).
		local := canonicalHistory(t, fetchHistory(t, killed, id))
		prefix := strings.TrimSuffix(local, "]")
		if !strings.HasPrefix(ref[id], prefix) {
			t.Errorf("victim %s shard-local history is not a clean prefix\n%s\nref: %s\ngot: %s", id, chaosCtx(plan, rt, users), ref[id], local)
		}
	}
	if victims == 0 {
		t.Fatalf("no user was homed on the killed shard — workload cannot witness the fault\n%s", chaosCtx(plan, rt, users))
	}

	// Invariant 3: metrics ↔ audit reconciliation. Every routed 200
	// solve is exactly one solve.done line on exactly one shard; every
	// rejection is none.
	var m metricsDoc
	getJSON(t, base+"/metrics", &m)
	done := 0
	for _, audit := range fleet.audits {
		done += countAuditLines(t, audit, "solve.done")
	}
	if int64(done) != m.Router.SolvesRouted {
		t.Errorf("audit solve.done %d != router solvesRouted %d\n%s", done, m.Router.SolvesRouted, chaosCtx(plan, rt, users))
	}
	if got := int(m.Router.SolvesRouted) + rejected; got != len(users)*iters {
		t.Errorf("routed %d + rejected %d != %d scripted solves\n%s", m.Router.SolvesRouted, rejected, len(users)*iters, chaosCtx(plan, rt, users))
	}
	if m.Router.SolveRejects != int64(rejected) {
		t.Errorf("solveRejects %d != observed 503s %d\n%s", m.Router.SolveRejects, rejected, chaosCtx(plan, rt, users))
	}
	if m.Router.ShardKills != 1 {
		t.Errorf("shardKills = %d, want 1\n%s", m.Router.ShardKills, chaosCtx(plan, rt, users))
	}
}

func TestChaosPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos workload is slow")
	}
	u := testUniverse(t, testUniverseN)
	users := []string{"p0", "p1", "p2", "p3"}
	const iters = 3
	ref := referenceHistories(t, u, users, iters)

	plan := loadRouterPlan(t, "partition")
	inj := faultinject.MustNew(plan)
	fleet := startShards(t, 2, server.Config{})
	rt, base := startRouter(t, fleet, Config{FaultInjector: inj, RetryAfterSeconds: 1})

	for _, id := range users {
		createWithID(t, base, u, id)
	}
	drops := 0
	for k := 0; k < iters; k++ {
		for _, id := range users {
			// Retry through the partition: every 503 is one dropped
			// arrival, so the window closes after `repeat` retries.
			ok := false
			for attempt := 0; attempt < 12; attempt++ {
				resp, body := postJSON(t, base+"/v1/sessions/"+id+"/solve", map[string]any{})
				if resp.StatusCode == http.StatusOK {
					ok = true
					break
				}
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("solve %s/%d: unexpected %d %s\n%s", id, k, resp.StatusCode, body, chaosCtx(plan, rt, users))
				}
				drops++
				time.Sleep(10 * time.Millisecond)
			}
			if !ok {
				t.Fatalf("solve %s/%d never got through the partition\n%s", id, k, chaosCtx(plan, rt, users))
			}
		}
	}

	wantDrops := plan.Entries[0].Repeat
	if drops != wantDrops {
		t.Errorf("observed %d drops, want %d\n%s", drops, wantDrops, chaosCtx(plan, rt, users))
	}
	if fired := inj.FiredCount(faultinject.RouterPartition); fired != wantDrops {
		t.Errorf("partition fired %d times, want %d\n%s", fired, wantDrops, chaosCtx(plan, rt, users))
	}

	// Convergence: once the partition lifts, every retried session ends
	// bit-identical to the fault-free reference.
	for _, id := range users {
		if got := canonicalHistory(t, fetchHistory(t, base, id)); got != ref[id] {
			t.Errorf("session %s did not converge after the partition\n%s\nref: %s\ngot: %s", id, chaosCtx(plan, rt, users), ref[id], got)
		}
	}

	// Reconciliation, as in the kill scenario.
	var m metricsDoc
	getJSON(t, base+"/metrics", &m)
	done := 0
	for _, audit := range fleet.audits {
		done += countAuditLines(t, audit, "solve.done")
	}
	if int64(done) != m.Router.SolvesRouted {
		t.Errorf("audit solve.done %d != router solvesRouted %d\n%s", done, m.Router.SolvesRouted, chaosCtx(plan, rt, users))
	}
	if m.Router.SolvesRouted != int64(len(users)*iters) {
		t.Errorf("solvesRouted = %d, want %d\n%s", m.Router.SolvesRouted, len(users)*iters, chaosCtx(plan, rt, users))
	}
	if m.Router.PartitionDrops != int64(wantDrops) {
		t.Errorf("partitionDrops = %d, want %d\n%s", m.Router.PartitionDrops, wantDrops, chaosCtx(plan, rt, users))
	}
}
