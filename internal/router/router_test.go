package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/schemaio"
	"ube/internal/server"
	"ube/internal/synth"
)

// Shared helpers: in-process shard fleets behind an in-process router.
// Every shard is a full server.Server on an httptest listener, so the
// differential and chaos tests exercise real HTTP end to end.

const testUniverseN = 25

func testUniverse(t *testing.T, n int) *model.Universe {
	t.Helper()
	u, _, err := synth.Generate(synth.QuickConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func testProblemDoc() *schemaio.ProblemDoc {
	p := engine.DefaultProblem()
	p.MaxSources = 5
	p.MaxEvals = 400
	doc, err := schemaio.EncodeProblem(&p)
	if err != nil {
		panic(err)
	}
	return doc
}

// shardFleet is N in-process ube-serve shards plus their URLs in shard-
// index order (the order fault plans address them by).
type shardFleet struct {
	urls    []string
	servers []*server.Server
	tests   []*httptest.Server
	audits  []*syncBuffer
}

// startShards boots n shards; cfg is cloned per shard, with each shard
// getting its own audit buffer.
func startShards(t *testing.T, n int, cfg server.Config) *shardFleet {
	t.Helper()
	f := &shardFleet{}
	for i := 0; i < n; i++ {
		audit := &syncBuffer{}
		c := cfg
		c.AuditWriter = audit
		srv := server.New(c)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		f.urls = append(f.urls, ts.URL)
		f.servers = append(f.servers, srv)
		f.tests = append(f.tests, ts)
		f.audits = append(f.audits, audit)
	}
	return f
}

// startRouter mounts a router over the fleet with the background prober
// disabled (tests drive probes explicitly) and returns its base URL.
func startRouter(t *testing.T, f *shardFleet, cfg Config) (*Router, string) {
	t.Helper()
	cfg.Shards = f.urls
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts.URL
}

// syncBuffer is a mutex-guarded buffer for cross-goroutine audit reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// countAuditLines counts audit entries with the given action.
func countAuditLines(t *testing.T, b *syncBuffer, action string) int {
	t.Helper()
	n := 0
	for _, line := range bytes.Split([]byte(b.String()), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e struct {
			Action string `json:"action"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad audit line %q: %v", line, err)
		}
		if e.Action == action {
			n++
		}
	}
	return n
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// createWithID creates a session under an explicit ID through base.
func createWithID(t *testing.T, base string, u *model.Universe, id string) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/sessions", map[string]any{
		"universe": u, "problem": testProblemDoc(), "id": id,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %q: %d %s", id, resp.StatusCode, body)
	}
}

type historyDoc struct {
	Iterations []schemaio.IterationDoc `json:"iterations"`
}

func fetchHistory(t *testing.T, base, id string) []schemaio.IterationDoc {
	t.Helper()
	var h historyDoc
	if resp := getJSON(t, base+"/v1/sessions/"+id+"/history", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("history %q: %d", id, resp.StatusCode)
	}
	return h.Iterations
}

// canonicalHistory zeroes the operational telemetry (wall-clock, match-
// cache traffic) that legitimately differs between bit-identical
// solves, then marshals: equal bytes mean equal solver-visible history.
func canonicalHistory(t *testing.T, iters []schemaio.IterationDoc) string {
	t.Helper()
	if iters == nil {
		iters = []schemaio.IterationDoc{}
	}
	for i := range iters {
		iters[i].Solution.ElapsedNS = 0
		iters[i].Solution.CacheHits = 0
		iters[i].Solution.CacheMisses = 0
		iters[i].Solution.CacheEvictions = 0
	}
	data, err := json.Marshal(iters)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// shardMap renders id→shard-index placement for failure messages.
func shardMap(rt *Router, ids []string) string {
	idx := make(map[string]int, len(rt.cfg.Shards))
	for i, s := range rt.cfg.Shards {
		idx[s] = i
	}
	var b bytes.Buffer
	for _, id := range ids {
		fmt.Fprintf(&b, "%s->shard%d ", id, idx[rt.ring.Lookup(id)])
	}
	return b.String()
}

// --- routing basics ---

func TestRouterCreateRouteAndList(t *testing.T) {
	u := testUniverse(t, testUniverseN)
	fleet := startShards(t, 2, server.Config{})
	rt, base := startRouter(t, fleet, Config{})

	// Minted create: router-owned g-prefixed ID, session reachable
	// through the router afterwards.
	resp, body := postJSON(t, base+"/v1/sessions", map[string]any{
		"universe": u, "problem": testProblemDoc(),
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("minted create: %d %s", resp.StatusCode, body)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.ID) < 2 || info.ID[0] != 'g' {
		t.Fatalf("minted ID %q, want g-prefixed", info.ID)
	}
	if resp := getJSON(t, base+"/v1/sessions/"+info.ID, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET minted session via router: %d", resp.StatusCode)
	}

	// The session lives on exactly the shard the ring names.
	home := rt.ring.Lookup(info.ID)
	if resp := getJSON(t, home+"/v1/sessions/"+info.ID, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("session not on its ring shard: %d", resp.StatusCode)
	}
	for _, shard := range fleet.urls {
		if shard == home {
			continue
		}
		if resp := getJSON(t, shard+"/v1/sessions/"+info.ID, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("session leaked to non-home shard %s: %d", shard, resp.StatusCode)
		}
	}

	// Explicit-ID create routes by the same ring.
	createWithID(t, base, u, "alpha")
	if got := rt.ring.Lookup("alpha"); got != "" {
		if resp := getJSON(t, got+"/v1/sessions/alpha", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("explicit-ID session not on ring shard: %d", resp.StatusCode)
		}
	}

	// Solve through the router, then compare router-side and shard-side
	// histories byte for byte: the proxy must not reshape anything.
	if resp, body := postJSON(t, base+"/v1/sessions/alpha/solve", map[string]any{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve via router: %d %s", resp.StatusCode, body)
	}
	viaRouter := fetchHistory(t, base, "alpha")
	direct := fetchHistory(t, rt.ring.Lookup("alpha"), "alpha")
	if !reflect.DeepEqual(viaRouter, direct) {
		t.Error("router history differs from shard history")
	}

	// List merges both shards, sorted.
	var list struct {
		Sessions []string `json:"sessions"`
	}
	getJSON(t, base+"/v1/sessions", &list)
	if !sort.StringsAreSorted(list.Sessions) {
		t.Errorf("merged session list not sorted: %v", list.Sessions)
	}
	want := map[string]bool{info.ID: true, "alpha": true}
	for _, id := range list.Sessions {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("merged list missing %v (got %v)", want, list.Sessions)
	}

	// Duplicate explicit ID conflicts straight through the proxy.
	resp, _ = postJSON(t, base+"/v1/sessions", map[string]any{
		"universe": u, "problem": testProblemDoc(), "id": "alpha",
	})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate explicit ID via router: %d, want 409", resp.StatusCode)
	}
}

func TestRouterBinaryPassThrough(t *testing.T) {
	u := testUniverse(t, testUniverseN)
	fleet := startShards(t, 2, server.Config{})
	_, base := startRouter(t, fleet, Config{})
	createWithID(t, base, u, "bin-1")

	req, _ := http.NewRequest(http.MethodPost, base+"/v1/sessions/bin-1/solve", bytes.NewReader([]byte("{}")))
	req.Header.Set("Accept", schemaio.BinaryContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary solve via router: %d %s", resp.StatusCode, frame)
	}
	if ct := resp.Header.Get("Content-Type"); ct != schemaio.BinaryContentType {
		t.Fatalf("content type through router: %q", ct)
	}
	sr, err := schemaio.DecodeBinarySolveResult(frame)
	if err != nil {
		t.Fatalf("binary frame mangled in transit: %v", err)
	}
	if sr.Session != "bin-1" || sr.Iteration != 0 {
		t.Errorf("binary solve result (%q, %d), want (bin-1, 0)", sr.Session, sr.Iteration)
	}
}

// --- health: eject, readmit, kill ---

// flakyShard is a minimal shard stand-in whose /healthz can be toggled;
// it lets the eject/readmit cycle run without timing dependence.
type flakyShard struct {
	mu      sync.Mutex
	healthy bool
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	ok := f.healthy
	f.mu.Unlock()
	if r.URL.Path == "/healthz" && !ok {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}`))
}

func (f *flakyShard) set(ok bool) {
	f.mu.Lock()
	f.healthy = ok
	f.mu.Unlock()
}

func TestRouterEjectAndReadmit(t *testing.T) {
	flaky := &flakyShard{healthy: true}
	tsA := httptest.NewServer(flaky)
	defer tsA.Close()
	tsB := httptest.NewServer(&flakyShard{healthy: true})
	defer tsB.Close()

	rt, base := startRouter(t, &shardFleet{urls: []string{tsA.URL, tsB.URL}}, Config{})

	var hz healthzDoc
	getJSON(t, base+"/healthz", &hz)
	if hz.Status != "ok" || hz.HealthyShards != 2 {
		t.Fatalf("initial healthz: %+v", hz)
	}

	// Shard A fails its probe: ejected, router degrades but stays 200.
	flaky.set(false)
	rt.ProbeNow()
	if resp := getJSON(t, base+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status code: %d", resp.StatusCode)
	}
	if hz.Status != "degraded" || hz.HealthyShards != 1 {
		t.Fatalf("degraded healthz: %+v", hz)
	}

	// A session homed on the ejected shard gets 503 + Retry-After.
	var down string
	for _, id := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"} {
		if rt.ring.Lookup(id) == tsA.URL {
			down = id
			break
		}
	}
	if down == "" {
		t.Fatal("no probe key hashed to the ejected shard; widen the key set")
	}
	resp := getJSON(t, base+"/v1/sessions/"+down, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request to ejected shard: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Probe recovery readmits it.
	flaky.set(true)
	rt.ProbeNow()
	getJSON(t, base+"/healthz", &hz)
	if hz.Status != "ok" || hz.HealthyShards != 2 {
		t.Fatalf("post-readmit healthz: %+v", hz)
	}

	// A kill is permanent: probes must NOT readmit.
	rt.KillShard(0)
	rt.ProbeNow()
	getJSON(t, base+"/healthz", &hz)
	if hz.HealthyShards != 1 {
		t.Fatalf("killed shard came back: %+v", hz)
	}
	if !hz.Shards[tsA.URL].Killed {
		t.Error("healthz does not mark the killed shard")
	}
}

// --- cross-shard determinism differential (satellite 1) ---

// TestCrossShardDeterminism runs one scripted workload against a single
// unsharded server, a 2-shard router, and a 4-shard router: every
// user's canonicalized history must be byte-identical across all three
// topologies. This is the paper's determinism contract surviving
// horizontal sharding.
func TestCrossShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("differential workload is slow")
	}
	u := testUniverse(t, testUniverseN)
	users := []string{"user-a", "user-b", "user-c", "user-d", "user-e"}

	// The script: 3 solves per user; user index k tightens theta on its
	// k%3-th iteration so the workload isn't symmetric across users.
	runWorkload := func(t *testing.T, base string) map[string]string {
		t.Helper()
		for _, id := range users {
			createWithID(t, base, u, id)
		}
		for iter := 0; iter < 3; iter++ {
			for k, id := range users {
				req := map[string]any{}
				if iter == k%3 {
					req["theta"] = 0.75
				}
				resp, body := postJSON(t, base+"/v1/sessions/"+id+"/solve", req)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("solve %s/%d: %d %s", id, iter, resp.StatusCode, body)
				}
			}
		}
		out := make(map[string]string, len(users))
		for _, id := range users {
			out[id] = canonicalHistory(t, fetchHistory(t, base, id))
		}
		return out
	}

	// Topology A: one plain server, no router.
	single := server.New(server.Config{})
	tsSingle := httptest.NewServer(single.Handler())
	defer tsSingle.Close()
	ref := runWorkload(t, tsSingle.URL)

	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(fmt.Sprintf("%d-shards", shards), func(t *testing.T) {
			fleet := startShards(t, shards, server.Config{})
			rt, base := startRouter(t, fleet, Config{})
			got := runWorkload(t, base)
			for _, id := range users {
				if got[id] != ref[id] {
					t.Errorf("user %s diverged on %d shards\nuniverse: synth.QuickConfig(%d)\nshard map: %s\nref:  %s\ngot:  %s",
						id, shards, testUniverseN, shardMap(rt, users), ref[id], got[id])
				}
			}
		})
	}
}

// --- aggregated metrics ---

func TestRouterMetricsAggregation(t *testing.T) {
	u := testUniverse(t, testUniverseN)
	fleet := startShards(t, 2, server.Config{})
	_, base := startRouter(t, fleet, Config{})

	ids := []string{"m1", "m2", "m3"}
	for _, id := range ids {
		createWithID(t, base, u, id)
		if resp, body := postJSON(t, base+"/v1/sessions/"+id+"/solve", map[string]any{}); resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: %d %s", id, resp.StatusCode, body)
		}
	}

	var m metricsDoc
	if resp := getJSON(t, base+"/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("router metrics: %d", resp.StatusCode)
	}
	if m.Router.SolvesRouted != int64(len(ids)) {
		t.Errorf("solvesRouted = %d, want %d", m.Router.SolvesRouted, len(ids))
	}
	if m.Totals.Solves != int64(len(ids)) {
		t.Errorf("aggregated solves = %d, want %d", m.Totals.Solves, len(ids))
	}
	if m.Totals.SessionsActive != int64(len(ids)) {
		t.Errorf("aggregated active sessions = %d, want %d", m.Totals.SessionsActive, len(ids))
	}
	if len(m.Shards) != 2 {
		t.Errorf("per-shard metrics for %d shards, want 2", len(m.Shards))
	}
	if len(m.Unreachable) != 0 {
		t.Errorf("unreachable shards: %v", m.Unreachable)
	}
	// Per-shard request counters sum to at least the proxied total.
	var perShard int64
	for _, s := range m.Router.PerShard {
		perShard += s.Requests
	}
	if perShard != m.Router.Proxied {
		t.Errorf("per-shard requests %d != proxied %d", perShard, m.Router.Proxied)
	}
}
