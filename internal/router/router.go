package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ube/internal/faultinject"
)

// maxCreateBody bounds create-session bodies, mirroring the shard
// server's own request cap: the router must buffer creates (to inject
// the session ID and to retry minted-ID collisions), so the cap is the
// router's allocation bound.
const maxCreateBody = 64 << 20

// Config sizes the router.
type Config struct {
	// Shards are the shard base URLs ("http://host:port"), in a fixed
	// order: shard index in fault plans (router.shard-kill Arg) is an
	// index into this slice. At least one is required.
	Shards []string
	// Replicas is the virtual-node count per shard on the hash ring;
	// ≤0 gets DefaultReplicas. Every router fronting the same shard
	// set MUST use the same value, or they will disagree on placement.
	Replicas int
	// Client performs shard requests; nil gets a dedicated client with
	// sane connection pooling. SSE proxying requires a client without
	// a global timeout, so Config.Client timeouts are the caller's
	// responsibility.
	Client *http.Client
	// RetryAfterSeconds is the backoff guidance on router-generated
	// 503s. Default 2.
	RetryAfterSeconds int
	// ProbeInterval paces background shard health probes. 0 gets the
	// 500ms default; negative disables the prober (tests drive probes
	// explicitly via Probe).
	ProbeInterval time.Duration
	// FaultInjector arms the router.* chaos points (see
	// internal/faultinject). Nil in production.
	FaultInjector *faultinject.Injector
}

// Router is the consistent-hash front. Create with New, mount
// Handler(), Close when done.
type Router struct {
	cfg     Config
	ring    *Ring
	health  *healthTracker
	client  *http.Client
	mux     *http.ServeMux
	inj     *faultinject.Injector
	metrics *routerMetrics
	nextID  atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over the configured shards and starts the health
// prober (unless disabled).
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	seen := make(map[string]bool, len(cfg.Shards))
	for _, s := range cfg.Shards {
		if s == "" || seen[s] {
			return nil, fmt.Errorf("router: empty or duplicate shard %q", s)
		}
		seen[s] = true
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 2
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Replicas),
		health:  newHealthTracker(cfg.Shards),
		client:  cfg.Client,
		inj:     cfg.FaultInjector,
		metrics: newRouterMetrics(cfg.Shards),
		done:    make(chan struct{}),
	}
	rt.ring.Add(cfg.Shards...)
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		}}
	}
	rt.routes()
	interval := cfg.ProbeInterval
	if interval == 0 {
		interval = 500 * time.Millisecond
	}
	if interval > 0 {
		rt.wg.Add(1)
		go rt.prober(interval)
	}
	return rt, nil
}

// Close stops the health prober. It does not touch the shards.
func (rt *Router) Close() {
	close(rt.done)
	rt.wg.Wait()
}

// Handler returns the HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ServeHTTP makes the router mountable directly.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Ring exposes the placement ring (read-only) for tests and tooling.
func (rt *Router) Ring() *Ring { return rt.ring }

// ProbeNow runs one synchronous probe pass; tests use it to exercise
// eject/readmit without waiting on the background prober.
func (rt *Router) ProbeNow() {
	rt.health.probeAll(context.Background(), rt.client)
}

// KillShard permanently ejects a shard by index (operator surface and
// the implementation of router.shard-kill with an Arg).
func (rt *Router) KillShard(i int) {
	if i >= 0 && i < len(rt.cfg.Shards) {
		rt.health.kill(rt.cfg.Shards[i])
		rt.metrics.shardKills.Add(1)
	}
}

func (rt *Router) prober(interval time.Duration) {
	defer rt.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-t.C:
			rt.health.probeAll(context.Background(), rt.client)
		}
	}
}

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	rt.mux.HandleFunc("GET /v1/sessions", rt.handleList)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	rt.mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.handleSession)
}

type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, _ := json.Marshal(v)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

func (rt *Router) writeUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(rt.cfg.RetryAfterSeconds))
	writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// --- session create: ID minting and placement ---

// rewriteCreateBody injects the chosen session ID into a create-request
// body without understanding the rest of it: unknown fields pass
// through verbatim (the shard's strict decoder owns rejecting them).
// Returns the rewritten body and the ID already present, if any.
func rewriteCreateBody(raw []byte, id string) ([]byte, error) {
	var fields map[string]json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&fields); err != nil {
		return nil, fmt.Errorf("body is not a JSON object: %v", err)
	}
	if dec.More() {
		return nil, errors.New("trailing content after JSON body")
	}
	if fields == nil {
		fields = make(map[string]json.RawMessage, 1)
	}
	idRaw, err := json.Marshal(id)
	if err != nil {
		return nil, err
	}
	fields["id"] = idRaw
	return json.Marshal(fields)
}

// extractCreateID returns the client-supplied session ID in a create
// body, or "" when absent. Malformed bodies return an error so the
// router rejects them before picking a shard.
func extractCreateID(raw []byte) (string, error) {
	var fields map[string]json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&fields); err != nil {
		return "", fmt.Errorf("body is not a JSON object: %v", err)
	}
	if dec.More() {
		return "", errors.New("trailing content after JSON body")
	}
	raw, ok := fields["id"]
	if !ok {
		return "", nil
	}
	var id string
	if err := json.Unmarshal(raw, &id); err != nil {
		return "", fmt.Errorf("id is not a string: %v", err)
	}
	return id, nil
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxCreateBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "reading request body: " + err.Error()})
		return
	}
	if len(raw) > maxCreateBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorDoc{Error: "request body too large"})
		return
	}
	explicitID, err := extractCreateID(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
		return
	}

	if explicitID != "" {
		// The client chose the key, so placement is fixed: the session
		// must live where the ring puts it, healthy or not.
		shard := rt.ring.Lookup(explicitID)
		if !rt.health.usable(shard) {
			rt.metrics.createRejects.Add(1)
			rt.writeUnavailable(w, "shard for session %q is unavailable", explicitID)
			return
		}
		rt.forward(w, r, shard, bytes.NewReader(raw), int64(len(raw)), false)
		return
	}

	// Minted ID: the router owns the key, so it can re-mint until the
	// key lands on a healthy shard (bounded — with all shards down
	// there is nobody to talk to) and on ID collision (a restarted
	// router re-minting a key some earlier life already placed: the
	// shard answers 409 and the next counter value is tried).
	attempts := 4*len(rt.cfg.Shards) + 4
	for i := 0; i < attempts; i++ {
		id := "g" + strconv.FormatInt(rt.nextID.Add(1), 10)
		shard := rt.ring.Lookup(id)
		if !rt.health.usable(shard) {
			continue
		}
		body, err := rewriteCreateBody(raw, id)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: err.Error()})
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, shard+"/v1/sessions", bytes.NewReader(body))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
			return
		}
		copyProxyHeaders(req.Header, r.Header)
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(len(body))
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.health.markFailure(shard)
			rt.metrics.forShard(shard).errors.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusConflict {
			// Minted-ID collision: drain and mint the next counter.
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.metrics.createRetries.Add(1)
			continue
		}
		rt.health.markSuccess(shard)
		if resp.StatusCode == http.StatusCreated {
			rt.metrics.createsMinted.Add(1)
		}
		rt.copyResponse(w, resp, shard)
		return
	}
	rt.metrics.createRejects.Add(1)
	rt.writeUnavailable(w, "no healthy shard available for a new session")
}

// --- session routing ---

func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rest := r.PathValue("rest")
	shard := rt.ring.Lookup(id)

	if rest == "solve" && r.Method == http.MethodPost {
		// The chaos points fire at the solve-proxy boundary only, so
		// trigger counts are scriptable from the workload alone.
		if f := rt.inj.Fire(faultinject.RouterShardKill); f != nil {
			target := shard
			if f.Arg > 0 && int(f.Arg) <= len(rt.cfg.Shards) {
				target = rt.cfg.Shards[f.Arg-1]
			}
			rt.health.kill(target)
			rt.metrics.shardKills.Add(1)
		}
		if f := rt.inj.Fire(faultinject.RouterPartition); f != nil {
			rt.metrics.partitionDrops.Add(1)
			rt.metrics.solveRejects.Add(1)
			rt.writeUnavailable(w, "router partition: solve dropped (arrival %d)", f.Arrival)
			return
		}
	}

	if !rt.health.usable(shard) {
		if rest == "solve" && r.Method == http.MethodPost {
			rt.metrics.solveRejects.Add(1)
		}
		rt.writeUnavailable(w, "shard for session %q is unavailable", id)
		return
	}
	rt.forward(w, r, shard, r.Body, r.ContentLength, rest == "solve" && r.Method == http.MethodPost)
}

// forward proxies one request to shard and streams the response back.
// SSE responses are flushed frame by frame so progress events arrive
// live through the router.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, shard string, body io.Reader, contentLength int64, isSolve bool) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, shard+pathOf(r), body)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
		return
	}
	copyProxyHeaders(req.Header, r.Header)
	req.ContentLength = contentLength
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.health.markFailure(shard)
		rt.metrics.forShard(shard).errors.Add(1)
		rt.metrics.proxyErrors.Add(1)
		if isSolve {
			rt.metrics.solveRejects.Add(1)
		}
		rt.writeUnavailable(w, "shard unavailable: %v", err)
		return
	}
	rt.health.markSuccess(shard)
	if isSolve && resp.StatusCode == http.StatusOK {
		rt.metrics.solvesRouted.Add(1)
	}
	rt.copyResponse(w, resp, shard)
}

// pathOf rebuilds the shard-side path of the inbound request. The
// router's surface is identical to the shard's, so the inbound escaped
// path + query forward verbatim.
func pathOf(r *http.Request) string {
	p := r.URL.EscapedPath()
	if q := r.URL.RawQuery; q != "" {
		p += "?" + q
	}
	return p
}

func (rt *Router) copyResponse(w http.ResponseWriter, resp *http.Response, shard string) {
	defer resp.Body.Close()
	rt.metrics.proxied.Add(1)
	rt.metrics.forShard(shard).requests.Add(1)
	//ube:nondeterministic-ok HTTP headers are an unordered set per RFC 9110
	for k, vs := range resp.Header {
		if isHopByHop(k) {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		rt.streamSSE(w, resp.Body)
		return
	}
	_, _ = io.Copy(w, resp.Body)
}

// streamSSE relays an event stream with a flush after every read so
// frames cross the router as they arrive, not when a buffer fills.
func (rt *Router) streamSSE(w http.ResponseWriter, body io.Reader) {
	rc := http.NewResponseController(w)
	_ = rc.Flush()
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// copyProxyHeaders forwards end-to-end headers, dropping hop-by-hop
// ones (RFC 9110 §7.6.1).
func copyProxyHeaders(dst, src http.Header) {
	//ube:nondeterministic-ok HTTP headers are an unordered set per RFC 9110
	for k, vs := range src {
		if isHopByHop(k) || strings.EqualFold(k, "Host") {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func isHopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// --- list / healthz / metrics aggregation ---

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	merged := make([]string, 0, 64)
	for _, shard := range rt.cfg.Shards {
		if !rt.health.usable(shard) {
			continue
		}
		var doc struct {
			Sessions []string `json:"sessions"`
		}
		if err := rt.getJSON(r, shard, "/v1/sessions", &doc); err != nil {
			rt.health.markFailure(shard)
			continue
		}
		merged = append(merged, doc.Sessions...)
	}
	sort.Strings(merged)
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": merged})
}

// healthzDoc is the router's aggregated /healthz body.
type healthzDoc struct {
	// Status is "ok" with every shard usable, else "degraded". The
	// router answers 200 either way — it is itself alive — so load
	// balancers keep it in rotation while it sheds only the dead
	// shard's keyspace.
	Status        string                 `json:"status"`
	HealthyShards int                    `json:"healthyShards"`
	TotalShards   int                    `json:"totalShards"`
	Shards        map[string]shardHealth `json:"shards"`
}

type shardHealth struct {
	Healthy bool `json:"healthy"`
	Killed  bool `json:"killed,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := healthzDoc{Shards: make(map[string]shardHealth, len(rt.cfg.Shards))}
	for _, shard := range rt.cfg.Shards {
		st := rt.health.state(shard)
		doc.Shards[shard] = shardHealth{Healthy: rt.health.usable(shard), Killed: st.killed.Load()}
	}
	doc.HealthyShards, doc.TotalShards = rt.health.healthyCount()
	doc.Status = "ok"
	if doc.HealthyShards < doc.TotalShards {
		doc.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, doc)
}

// shardTotals are the shard counters the router sums for its
// aggregated view; the full per-shard /metrics docs ride alongside.
type shardTotals struct {
	SessionsCreated  int64 `json:"sessionsCreated"`
	SessionsActive   int64 `json:"sessionsActive"`
	Solves           int64 `json:"solves"`
	SolvesAdmitted   int64 `json:"solvesAdmitted"`
	SolveErrors      int64 `json:"solveErrors"`
	QueueRejections  int64 `json:"queueRejections"`
	SolveCacheHits   int64 `json:"solveCacheHits"`
	SolveCacheMisses int64 `json:"solveCacheMisses"`
}

// metricsDoc is the router's aggregated /metrics body.
type metricsDoc struct {
	Router routerCountersDoc `json:"router"`
	// Totals sums the reachable shards' key counters; Unreachable
	// lists shards whose /metrics could not be fetched, so a partial
	// sum is never mistaken for a full one.
	Totals      shardTotals                `json:"totals"`
	Unreachable []string                   `json:"unreachableShards,omitempty"`
	Shards      map[string]json.RawMessage `json:"shards"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := metricsDoc{
		Router: rt.metrics.snapshot(rt.health),
		Shards: make(map[string]json.RawMessage, len(rt.cfg.Shards)),
	}
	for _, shard := range rt.cfg.Shards {
		raw, err := rt.getRaw(r, shard, "/metrics")
		if err != nil {
			doc.Unreachable = append(doc.Unreachable, shard)
			continue
		}
		doc.Shards[shard] = raw
		var t shardTotals
		if json.Unmarshal(raw, &t) == nil {
			doc.Totals.SessionsCreated += t.SessionsCreated
			doc.Totals.SessionsActive += t.SessionsActive
			doc.Totals.Solves += t.Solves
			doc.Totals.SolvesAdmitted += t.SolvesAdmitted
			doc.Totals.SolveErrors += t.SolveErrors
			doc.Totals.QueueRejections += t.QueueRejections
			doc.Totals.SolveCacheHits += t.SolveCacheHits
			doc.Totals.SolveCacheMisses += t.SolveCacheMisses
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (rt *Router) getJSON(r *http.Request, shard, path string, out any) error {
	raw, err := rt.getRaw(r, shard, path)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

func (rt *Router) getRaw(r *http.Request, shard, path string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, shard+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %s %s: status %d", shard, path, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}
