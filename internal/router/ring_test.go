package router

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// ringKeys generates a deterministic key population shaped like real
// session IDs: router-minted g<N> plus client-chosen names.
func ringKeys(n int) []string {
	keys := make([]string, 0, 2*n)
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("g%d", i+1))
		keys = append(keys, fmt.Sprintf("user-%d", i+1))
	}
	return keys
}

func ringOf(n, replicas int) (*Ring, []string) {
	shards := make([]string, n)
	for i := range shards {
		shards[i] = fmt.Sprintf("http://shard-%d", i)
	}
	r := NewRing(replicas)
	r.Add(shards...)
	return r, shards
}

// TestRingMovementOnAdd checks the consistent-hashing contract: adding
// one shard to an N-shard ring moves roughly K/(N+1) of K keys, and
// every moved key moves TO the new shard (no collateral shuffling).
func TestRingMovementOnAdd(t *testing.T) {
	keys := ringKeys(2500)
	for _, n := range []int{1, 2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("%d+1", n), func(t *testing.T) {
			before, _ := ringOf(n, 0)
			owners := make(map[string]string, len(keys))
			for _, k := range keys {
				owners[k] = before.Lookup(k)
			}

			after, _ := ringOf(n, 0)
			newShard := fmt.Sprintf("http://shard-%d", n)
			after.Add(newShard)

			moved := 0
			for _, k := range keys {
				now := after.Lookup(k)
				if now == owners[k] {
					continue
				}
				moved++
				if now != newShard {
					t.Fatalf("key %q moved %s → %s, not to the new shard", k, owners[k], now)
				}
			}
			want := float64(len(keys)) / float64(n+1)
			if f := float64(moved); f < 0.5*want || f > 2.0*want {
				t.Errorf("adding shard %d moved %d keys, want ~%.0f (K/N within 2x)", n+1, moved, want)
			}
		})
	}
}

// TestRingMovementOnRemove checks the inverse: removing a shard moves
// ONLY that shard's keys, and the survivors keep their owners exactly.
func TestRingMovementOnRemove(t *testing.T) {
	keys := ringKeys(2500)
	for _, n := range []int{2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("%d-1", n), func(t *testing.T) {
			r, shards := ringOf(n, 0)
			owners := make(map[string]string, len(keys))
			for _, k := range keys {
				owners[k] = r.Lookup(k)
			}
			victim := shards[n-1]
			r.Remove(victim)
			for _, k := range keys {
				now := r.Lookup(k)
				if owners[k] == victim {
					if now == victim {
						t.Fatalf("key %q still routes to the removed shard", k)
					}
					continue
				}
				if now != owners[k] {
					t.Fatalf("survivor key %q moved %s → %s on an unrelated removal", k, owners[k], now)
				}
			}
		})
	}
}

// TestRingBalance bounds the load imbalance at the default replica
// count: no shard should own more than ~2x its fair share.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(5000)
	for _, n := range []int{2, 4, 8} {
		r, _ := ringOf(n, 0)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for shard, c := range counts {
			if f := float64(c); f > 2.0*fair || f < 0.35*fair {
				t.Errorf("n=%d: shard %s owns %d keys (fair share %.0f)", n, shard, c, fair)
			}
		}
	}
}

// TestRingDeterministicAcrossRestarts proves placement is a pure
// function of the membership set: rings built in different add orders,
// in different "processes" (fresh values), agree on every lookup. This
// is what lets a restarted router find every existing session.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	shards := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r1 := NewRing(0)
	r1.Add(shards...)
	r2 := NewRing(0)
	for i := len(shards) - 1; i >= 0; i-- { // reverse order, one at a time
		r2.Add(shards[i])
	}
	r3 := NewRing(0)
	r3.Add(shards[2], shards[0])
	r3.Add(shards[1], shards[3], shards[1]) // re-add is idempotent
	for _, k := range ringKeys(1000) {
		a, b, c := r1.Lookup(k), r2.Lookup(k), r3.Lookup(k)
		if a != b || b != c {
			t.Fatalf("lookup %q disagrees across build orders: %q %q %q", k, a, b, c)
		}
	}
	if !reflect.DeepEqual(r1.Nodes(), r2.Nodes()) || r1.Size() != 4 {
		t.Errorf("membership disagrees: %v vs %v", r1.Nodes(), r2.Nodes())
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("anything"); got != "" {
		t.Errorf("empty ring lookup = %q, want \"\"", got)
	}
	r.Add("only")
	for _, k := range []string{"a", "b", "g999"} {
		if got := r.Lookup(k); got != "only" {
			t.Errorf("single-node ring lookup %q = %q", k, got)
		}
	}
	r.Remove("only")
	if r.Size() != 0 || r.Lookup("a") != "" {
		t.Error("ring not empty after removing its only node")
	}
	r.Remove("never-added") // must not panic
}

// TestRingGoldenShardMap pins the exact placement of a fixed key set on
// a fixed 4-shard ring. Any change to the hash, the vnode labeling, or
// the tie-break silently re-homes every live session in a rolling
// deploy — this fixture makes that a loud diff instead. Regenerate
// deliberately with: go test ./internal/router -run GoldenShardMap -update
func TestRingGoldenShardMap(t *testing.T) {
	r, _ := ringOf(4, 0)
	placement := make(map[string]string)
	for _, k := range ringKeys(20) {
		placement[k] = r.Lookup(k)
	}
	data, err := json.MarshalIndent(placement, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "shardmap.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if string(want) != string(data) {
		t.Errorf("shard placement changed — this re-homes live sessions.\nwant:\n%s\ngot:\n%s", want, data)
	}
}
