// Package router is the consistent-hash front for sharded µBE serving
// (DESIGN.md §15): it proxies the REST/SSE surface of N ube-serve shard
// processes, placing each session on a shard by hashing its ID onto a
// ring of virtual nodes. The per-session deterministic serialization
// invariant shards cleanly — a session's solves are serialized by its
// own shard exactly as by a single server, and solves are pure
// functions of (universe, input), so a session's history depends only
// on its own request order, never on which shard held it or what other
// sessions did.
//
// Stdlib-only, like the rest of the module.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes. Each node is
// hashed at Replicas points ("node#0", "node#1", ...); a key routes to
// the owner of the first point clockwise from the key's hash. Adding
// or removing one node therefore moves only ~K/N of K keys, and
// placement is a pure function of (node set, replicas, key) — byte-
// identical across processes and restarts, which is what lets a
// restarted router find every existing session without shared state.
//
// Lookup is safe for concurrent use once the ring is built; Add and
// Remove are not safe concurrently with anything.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per shard. 128 keeps the
// max/mean key-share imbalance within a few percent for small shard
// counts while the ring stays tiny (N×128 points).
const DefaultReplicas = 128

// NewRing builds an empty ring; replicas ≤ 0 gets DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// hashKey is FNV-64a — stdlib, stable across platforms and releases
// (the constants are part of its definition) — followed by a splitmix64
// finalizer. FNV alone avalanches poorly on near-identical inputs like
// vnode labels ("shard#0", "shard#1", ...), which skews key shares by
// >2x; the fixed-constant finalizer restores mixing while keeping the
// whole function a pure, platform-independent constant of its input.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts nodes, each at replicas virtual points. Re-adding a node
// is a no-op, so membership is idempotent.
func (r *Ring) Add(nodes ...string) {
	for _, node := range nodes {
		if r.nodes[node] {
			continue
		}
		r.nodes[node] = true
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(node + "#" + strconv.Itoa(i)),
				node: node,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding points are ordered by node name so the ring is
		// still a pure function of the membership set.
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node and its virtual points.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].node
}

// Nodes returns the member set in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.nodes) }
