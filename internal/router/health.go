package router

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// Shard health: admission-aware routing without ring churn.
//
// An unhealthy shard is NOT removed from the ring. Session state is
// shard-local, so re-hashing its keys elsewhere would route clients to
// shards that have never heard of their sessions; instead health only
// gates routing — requests for sessions on an ejected shard get clean
// 503 + Retry-After until probes readmit it, and new minted sessions
// skip it. A killed shard (the router.shard-kill fault, or operator
// action) is ejected permanently: probes never readmit it.
type shardState struct {
	healthy atomic.Bool
	killed  atomic.Bool
	// consecutive transport failures observed by live traffic; one is
	// enough to eject (probes readmit quickly, and a failing shard
	// must stop eating requests immediately).
	fails atomic.Int64
}

type healthTracker struct {
	shards map[string]*shardState
	order  []string
}

func newHealthTracker(shards []string) *healthTracker {
	h := &healthTracker{shards: make(map[string]*shardState, len(shards)), order: shards}
	for _, s := range shards {
		st := &shardState{}
		st.healthy.Store(true)
		h.shards[s] = st
	}
	return h
}

func (h *healthTracker) state(shard string) *shardState { return h.shards[shard] }

// usable reports whether shard should receive traffic.
func (h *healthTracker) usable(shard string) bool {
	st := h.shards[shard]
	return st != nil && st.healthy.Load() && !st.killed.Load()
}

// kill ejects shard permanently; probes never readmit it.
func (h *healthTracker) kill(shard string) {
	if st := h.shards[shard]; st != nil {
		st.killed.Store(true)
		st.healthy.Store(false)
	}
}

// markFailure records a transport failure seen by live traffic and
// ejects the shard until a probe readmits it.
func (h *healthTracker) markFailure(shard string) {
	if st := h.shards[shard]; st != nil {
		st.fails.Add(1)
		st.healthy.Store(false)
	}
}

// markSuccess clears the failure streak (live traffic got through).
func (h *healthTracker) markSuccess(shard string) {
	if st := h.shards[shard]; st != nil {
		st.fails.Store(0)
		if !st.killed.Load() {
			st.healthy.Store(true)
		}
	}
}

// healthyCount returns (usable, total).
func (h *healthTracker) healthyCount() (int, int) {
	n := 0
	for _, s := range h.order {
		if h.usable(s) {
			n++
		}
	}
	return n, len(h.order)
}

// probeAll probes every non-killed shard's /healthz once, readmitting
// shards that answer and ejecting shards that don't. Used by the
// background prober and directly by tests (so eject/readmit is testable
// without timing).
func (h *healthTracker) probeAll(ctx context.Context, client *http.Client) {
	for _, shard := range h.order {
		st := h.shards[shard]
		if st.killed.Load() {
			continue
		}
		st.healthy.Store(h.probeOne(ctx, client, shard))
	}
}

func (h *healthTracker) probeOne(ctx context.Context, client *http.Client, shard string) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
