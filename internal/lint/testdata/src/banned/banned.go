// Package banned is a lint fixture: ambient-state reads the wallclock,
// globalrand and goroutineid checks must flag in determinism-scoped
// packages, next to their sanctioned counterparts.
package banned

import (
	"math/rand"
	"runtime"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	t := time.Now()
	return t.UnixNano()
}

// Elapsed reads the clock but is annotated: not flagged.
func Elapsed(start time.Time) time.Duration {
	//ube:nondeterministic-ok wall-clock reporting only, never feeds results
	return time.Since(start)
}

// Draw uses the process-global RNG: flagged.
func Draw() float64 {
	return rand.Float64()
}

// DrawSeeded constructs seeded state and draws through methods, the
// sanctioned path: not flagged.
func DrawSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Workers asks the machine for its shape: flagged.
func Workers() int {
	return runtime.NumCPU()
}
