// Package lockblock is the lockblock check's fixture corpus: blocking
// operations — channel sends and receives, selects without default,
// Wait, Sleep, fault-injection points — performed while a mutex is held,
// against the shapes that must stay silent (release first, non-blocking
// select, blocking after unlock).
package lockblock

import (
	"sync"
	"time"

	"ube/internal/faultinject"
)

type pipe struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// sendHeld blocks on a send while mu is held.
func (p *pipe) sendHeld() {
	p.mu.Lock()
	p.ch <- 1 // want lockblock
	p.mu.Unlock()
}

// recvHeld blocks on a receive while mu is held — including under a
// deferred unlock, which releases only at return.
func (p *pipe) recvHeld() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.ch // want lockblock
}

// selectHeld blocks: no default, so the select parks the goroutine.
func (p *pipe) selectHeld() {
	p.mu.Lock()
	select { // want lockblock
	case v := <-p.ch:
		p.n = v
	case p.ch <- p.n:
	}
	p.mu.Unlock()
}

// waitHeld parks on a WaitGroup while mu is held.
func (p *pipe) waitHeld(wg *sync.WaitGroup) {
	p.mu.Lock()
	wg.Wait() // want lockblock
	p.mu.Unlock()
}

// sleepHeld stalls every contender for the sleep's duration.
func (p *pipe) sleepHeld() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want lockblock
	p.mu.Unlock()
}

// fireHeld runs a fault-injection point while mu is held.
func (p *pipe) fireHeld(inj *faultinject.Injector) {
	p.mu.Lock()
	_ = inj.Fire(faultinject.QueueOverflow) // want lockblock
	p.mu.Unlock()
}

// cleanAfterUnlock blocks only after releasing.
func (p *pipe) cleanAfterUnlock() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	p.ch <- p.n
}

// cleanNonBlockingSelect holds the lock but cannot park: the default
// clause makes every comm op a try.
func (p *pipe) cleanNonBlockingSelect() {
	p.mu.Lock()
	select {
	case p.ch <- p.n:
	default:
	}
	p.mu.Unlock()
}

// cleanGoroutine sends from a literal that holds nothing.
func (p *pipe) cleanGoroutine() {
	p.mu.Lock()
	n := p.n
	p.mu.Unlock()
	go func() { p.ch <- n }()
}

// annotated documents why the send must stay under the lock.
func (p *pipe) annotated() {
	p.mu.Lock()
	//ube:lock-held-ok the channel is buffered and drained by the owner; send cannot park
	p.ch <- 1
	p.mu.Unlock()
}
