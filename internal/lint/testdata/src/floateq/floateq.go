// Package floateq is a lint fixture: float comparisons the floateq check
// must flag, exempt, or honor the float-exact annotation on.
package floateq

// Same compares floats exactly: flagged.
func Same(a, b float64) bool {
	return a == b
}

// Sentinel is annotated exact: not flagged.
func Sentinel(w float64) bool {
	//ube:float-exact zero is the dimension-off sentinel, assigned literally
	return w == 0
}

// IntsAreFine compares integers: not flagged.
func IntsAreFine(a, b int) bool {
	return a != b
}

// Diff32 compares float32 operands: flagged.
func Diff32(a, b float32) bool {
	return a != b
}

// Ordered uses ordering operators, which are fine: not flagged.
func Ordered(a, b float64) bool {
	return a < b || a > b
}

// Compound hides the float equality inside a larger boolean expression:
// flagged at the inner comparison.
func Compound(a, b float64, ok bool) bool {
	return a == b || ok
}

// CompoundNested hides it one level deeper, behind a negation and an
// ordering guard: still flagged.
func CompoundNested(a, b, c float64) bool {
	return a < c && !(b != c)
}

// SwitchTag switches on a float: every case arm is an implicit ==, each
// flagged separately.
func SwitchTag(w float64) int {
	switch w {
	case 0:
		return 0
	case 1.5, 2.5:
		return 1
	default:
		return 2
	}
}

// SwitchSentinel blesses one arm: only the unannotated arm is flagged.
func SwitchSentinel(w float64) int {
	switch w {
	//ube:float-exact zero is the dimension-off sentinel, assigned literally
	case 0:
		return 0
	case 3.5:
		return 1
	}
	return 2
}

// SwitchNoTag is a tagless switch with ordering guards: not flagged.
func SwitchNoTag(w float64) int {
	switch {
	case w < 0:
		return -1
	case w > 0:
		return 1
	}
	return 0
}

// SwitchInt switches on an integer: not flagged.
func SwitchInt(n int) int {
	switch n {
	case 0:
		return 0
	}
	return 1
}
