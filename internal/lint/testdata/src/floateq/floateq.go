// Package floateq is a lint fixture: float comparisons the floateq check
// must flag, exempt, or honor the float-exact annotation on.
package floateq

// Same compares floats exactly: flagged.
func Same(a, b float64) bool {
	return a == b
}

// Sentinel is annotated exact: not flagged.
func Sentinel(w float64) bool {
	//ube:float-exact zero is the dimension-off sentinel, assigned literally
	return w == 0
}

// IntsAreFine compares integers: not flagged.
func IntsAreFine(a, b int) bool {
	return a != b
}

// Diff32 compares float32 operands: flagged.
func Diff32(a, b float32) bool {
	return a != b
}

// Ordered uses ordering operators, which are fine: not flagged.
func Ordered(a, b float64) bool {
	return a < b || a > b
}
