// Package deltafallback is a lint fixture: DeltaObjective call shapes
// the deltafallback check must flag (missing guard, missing fallback),
// accept, or honor the generic ignore directive on.
package deltafallback

// Problem mirrors the search.Problem delta protocol shape.
type Problem struct {
	Objective      func(int) float64
	DeltaObjective func(int, int) float64
}

// Good guards the delta path and keeps the fallback: not flagged.
func Good(p *Problem, s, d int) float64 {
	if p.DeltaObjective != nil {
		return p.DeltaObjective(s, d)
	}
	return p.Objective(s)
}

// NoGuard calls the delta objective unconditionally: flagged.
func NoGuard(p *Problem, s, d int) float64 {
	return p.DeltaObjective(s, d)
}

// NoFallback guards but never falls back to Objective: flagged.
func NoFallback(p *Problem, s, d int) float64 {
	if p.DeltaObjective != nil {
		return p.DeltaObjective(s, d)
	}
	return 0
}

// Ignored carries the generic ignore directive: not flagged.
func Ignored(p *Problem, s, d int) float64 {
	//ube:lint-ignore deltafallback caller constructs delta-aware problems only
	return p.DeltaObjective(s, d)
}
