// Package callgraph is the call-graph builder's fixture: direct calls,
// interface dispatch (conservatively to every module implementer),
// method values, closures, callback parameters and function-typed
// struct fields. The table-driven tests pin the exact edges.
package callgraph

type greeter interface{ greet() string }

type english struct{}

func (english) greet() string { return "hi" }

type pirate struct{}

func (pirate) greet() string { return "arr" }

// speak dispatches through the interface: edges to both implementers.
func speak(g greeter) string { return g.greet() }

// direct calls speak directly.
func direct() string { return speak(english{}) }

// methodValue binds a method value to a variable and calls it.
func methodValue() string {
	e := english{}
	f := e.greet
	return f()
}

// closures nest two literals; the second calls the first through a
// captured variable.
func closures() int {
	add := func(a, b int) int { return a + b }
	double := func(x int) int { return add(x, x) }
	return double(2)
}

// apply invokes its callback parameter: the callback flows in from each
// call site.
func apply(f func() string) string { return f() }

// useApply passes a literal into apply.
func useApply() string {
	return apply(func() string { return "x" })
}

// holder carries a function-typed field.
type holder struct{ fn func() string }

// viaField stores a literal into the field and calls through it.
func viaField() string {
	h := holder{fn: func() string { return "f" }}
	return h.fn()
}
