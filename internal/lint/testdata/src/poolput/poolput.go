// Package poolput is a lint fixture: sync.Pool Get/Put shapes the
// poolput check must flag as leaks or escapes, accept as hygienic, or
// honor the pool-escape annotation on.
package poolput

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

// Leak gets and never puts: flagged.
func Leak() int {
	buf := pool.Get().(*[]byte)
	return len(*buf)
}

// Deferred puts on every return path: not flagged.
func Deferred() int {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	return len(*buf)
}

// EarlyReturn has a return between the Get and its Put: flagged.
func EarlyReturn(skip bool) int {
	buf := pool.Get().(*[]byte)
	if skip {
		return 0
	}
	n := len(*buf)
	pool.Put(buf)
	return n
}

// Straight puts before its only return: not flagged.
func Straight() int {
	buf := pool.Get().(*[]byte)
	n := len(*buf)
	pool.Put(buf)
	return n
}

// Handoff transfers ownership to the caller and says so: not flagged.
func Handoff() *[]byte {
	//ube:pool-escape ownership transfers to the caller, which must Put
	return pool.Get().(*[]byte)
}
