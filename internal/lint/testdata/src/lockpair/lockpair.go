// Package lockpair is the lockpair check's fixture corpus: locks leaked
// on early returns, fall-through and loop bodies, against the clean
// shapes (deferred unlock, early unlock, branch-balanced unlock).
package lockpair

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// leakEarlyReturn leaks mu on the error path.
func (s *store) leakEarlyReturn(fail bool) error {
	s.mu.Lock() // want lockpair
	if fail {
		return errFail
	}
	s.mu.Unlock()
	return nil
}

// leakFallOff never unlocks at all.
func (s *store) leakFallOff() {
	s.mu.Lock() // want lockpair
	s.n++
}

// leakLoop reacquires without releasing: iteration two self-deadlocks.
func (s *store) leakLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		s.mu.Lock() // want lockpair
		s.n++
	}
}

// leakMismatchedKind pairs an RLock with a write Unlock — the read hold
// is never released.
func (s *store) leakMismatchedKind() int {
	s.rw.RLock() // want lockpair
	n := s.n
	s.rw.Unlock()
	return n
}

// cleanDefer is the canonical shape: every path is covered.
func (s *store) cleanDefer(fail bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail {
		return errFail
	}
	s.n++
	return nil
}

// cleanEarlyUnlock releases on each path explicitly.
func (s *store) cleanEarlyUnlock(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFail
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// cleanBranches unlocks in every switch arm.
func (s *store) cleanBranches(mode int) {
	s.mu.Lock()
	switch mode {
	case 0:
		s.mu.Unlock()
	default:
		s.n++
		s.mu.Unlock()
	}
}

// cleanLoopBalanced locks and unlocks within each iteration.
func (s *store) cleanLoopBalanced(rounds int) {
	for i := 0; i < rounds; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// cleanReadLock pairs RLock with RUnlock.
func (s *store) cleanReadLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// annotated hands the lock to its caller by contract.
func (s *store) annotated() {
	//ube:lock-ok ownership transfers to the caller, which must unlock
	s.mu.Lock()
	s.n++
}

// goroutineScoped pairs its own locks inside the literal; the enclosing
// function holds nothing.
func (s *store) goroutineScoped() {
	go func() {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}()
}
