// Package taintflow is the taintflow check's fixture corpus: true flows
// through assignments, struct fields, returns, call arguments, closures,
// method receivers and select winners — plus non-flows that must stay
// silent (per-field granularity, operational absorption, map-range
// values, seeded rand draws, operational counters, suppressions).
package taintflow

import (
	"fmt"
	"math/rand"
	"time"
	"unsafe"

	"ube/internal/model"
	"ube/internal/search"
	"ube/internal/trace"
)

// sink is the fixture's generic determinism sink: every argument at
// every call site must be deterministic.
//
//ube:taint-sink fixture sink; arguments are canonical by contract
func sink(vs ...any) { _ = vs }

// clock mints a tainted value behind an annotated (blessed) clock read:
// the wallclock diagnostic is suppressed, the taint still flows.
func clock() int64 {
	//ube:nondeterministic-ok fixture source; the annotation must not stop the taint
	return time.Now().UnixNano()
}

// flowDirect: source → deterministic trace counter, one statement apart.
func flowDirect(st *trace.Stats) {
	n := clock()
	st.Add(trace.CSearchEvals, n) // want taintflow
}

// flowChain: taint survives an assignment chain into a declared sink.
func flowChain() {
	a := clock()
	b := a
	c := b
	sink(c) // want taintflow
}

// record exercises per-field granularity: stamp is tainted below, count
// never is — a tainted field must not smear across its siblings.
type record struct {
	stamp int64
	count int64
}

// flowField: taint lands in one struct field and resurfaces on read.
func flowField() {
	var r record
	r.stamp = clock()
	r.count = 3
	sink(r.stamp) // want taintflow
	sink(r.count) // silent: sibling fields keep their own taint
}

// opRecord exercises the operational-field policy: t absorbs timing
// taint by declaration; n stays guarded.
type opRecord struct {
	//ube:operational fixture timing field; never byte-compared
	t int64
	n int64
}

// flowOperational: writes into a declared operational field are
// absorbed, and reads from it are clean.
func flowOperational() {
	var o opRecord
	o.t = clock()
	o.n = 7
	sink(o.t) // silent: reads of operational fields are clean
	sink(o.n) // silent
}

// flowCompositeOperational: composite-literal keys obey the same
// per-field policy — an operational key absorbs the taint at the
// literal (the WAL stamps commit wall-clock this way), a guarded key
// carries it into the whole value.
func flowCompositeOperational() {
	ok := opRecord{t: clock(), n: 5}
	sink(ok) // silent: the only tainted write was absorbed
	bad := record{stamp: clock(), count: 5}
	sink(bad) // want taintflow
}

// flowReturn: taint crosses a function-return boundary.
func flowReturn() {
	sink(clock()) // want taintflow
}

// consume receives taint through its parameter from flowParam; the
// diagnostic lands at the sink inside the callee.
func consume(st *trace.Stats, x int64) {
	st.Add(trace.CSearchEvals, x) // want taintflow (via the call below)
}

func flowParam(st *trace.Stats) {
	consume(st, clock())
}

// box exercises interprocedural field taint through a method call.
type box struct{ v int64 }

func (b *box) put(x int64) { b.v = x }

func flowMethod() {
	b := &box{}
	b.put(clock())
	sink(b.v) // want taintflow
}

// flowClosure: taint crosses a closure's return.
func flowClosure() {
	f := func() int64 { return clock() }
	sink(f()) // want taintflow
}

// flowSelect: a variable assigned in two comm clauses records which case
// won the race — nondeterministic by identity, not by value.
func flowSelect(a, b chan int64) {
	var w int64
	select {
	case v := <-a:
		w = v
	case v := <-b:
		w = v
	}
	sink(w) // want taintflow (select winner)
}

// flowPointerFmt: %p renders an address; the string is tainted.
func flowPointerFmt() {
	x := 0
	addr := fmt.Sprintf("%p", &x)
	sink(addr) // want taintflow
}

// flowUnsafe: pointer identity escaping through uintptr arithmetic.
func flowUnsafe() {
	x := 0
	u := uintptr(unsafe.Pointer(&x))
	sink(int64(u)) // want taintflow
}

// flowGlobalRand: a blessed global-RNG draw still taints its value.
func flowGlobalRand() {
	//ube:nondeterministic-ok fixture source; the annotation must not stop the taint
	n := rand.Int63()
	sink(n) // want taintflow
}

// clockQuality returns a tainted quality — assigning it as an objective
// makes the solve a function of the clock.
func clockQuality(S *model.SourceSet) (float64, bool) {
	return float64(clock()), true
}

// flowObjectiveAssign: a declared function with tainted results assigned
// into the solver objective field.
func flowObjectiveAssign() *search.Problem {
	p := &search.Problem{}
	p.Objective = clockQuality // want taintflow
	return p
}

// flowObjectiveComposite: same sink, composite-literal form, closure
// value.
func flowObjectiveComposite() *search.Problem {
	base := clock()
	return &search.Problem{
		Objective: func(S *model.SourceSet) (float64, bool) { // want taintflow
			return float64(base), true
		},
	}
}

// silentMapRange: map iteration ORDER is nondeterministic (and flagged
// by maprange, suppressed here); an order-independent reduction of the
// VALUES is deterministic, so no taint flows.
func silentMapRange(m map[int]int64) {
	var total int64
	//ube:nondeterministic-ok order-independent sum; values are deterministic
	for _, v := range m {
		total += v
	}
	sink(total) // silent: map values carry no taint, only the order does
}

// silentSeededRand: draws from an explicitly seeded generator are the
// sanctioned randomness path.
func silentSeededRand() {
	rng := rand.New(rand.NewSource(1))
	sink(rng.Int63()) // silent
}

// silentOperationalCounter: operational counters are stripped by
// Canonical, so timing may reach them.
func silentOperationalCounter(st *trace.Stats) {
	st.Add(trace.OSnapshotBuilds, clock()) // silent: operational counter
}

// silentSuppressed: the dedicated suppression silences the sink report.
func silentSuppressed() {
	//ube:taint-ok fixture demonstrates the suppression
	sink(clock())
}
