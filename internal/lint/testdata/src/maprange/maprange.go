// Package maprange is a lint fixture: map-iteration shapes the maprange
// check must flag, recognize as the keys-collect idiom, or honor a
// suppression on.
package maprange

import "sort"

// Total folds values in map iteration order: flagged.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Keys is the recognized sort-the-keys idiom: not flagged.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MaxValue is order-independent and annotated: not flagged.
func MaxValue(m map[string]int) int {
	best := 0
	//ube:nondeterministic-ok per-key max fold is order-independent
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Count carries the generic ignore directive on the line: not flagged.
func Count(m map[int]int) int {
	n := 0
	for range m { //ube:lint-ignore maprange counting only, order cannot matter
		n++
	}
	return n
}

// WrongDirective carries an annotation for a different check, which must
// not silence maprange: flagged.
func WrongDirective(m map[int]float64) float64 {
	var sum float64
	//ube:float-exact wrong directive for this check
	for _, v := range m {
		sum += v
	}
	return sum
}
