// Package stalesuppress is the stalesuppress check's fixture corpus:
// suppressions that still suppress (silent), suppressions orphaned by
// refactors, stale lint-ignores, unknown directive words, and
// declaration directives (never stale).
package stalesuppress

// used still suppresses a floateq diagnostic — silent.
func used(a, b float64) bool {
	//ube:float-exact fixture sentinel comparison
	return a == b
}

// stale sits above an integer comparison: floateq never fires, so the
// annotation suppresses nothing.
func stale(a, b int) bool {
	//ube:float-exact nothing on the next line compares floats
	return a == b
}

// staleIgnore names a check that cannot fire here.
func staleIgnore(xs []int) int {
	total := 0
	//ube:lint-ignore maprange a slice range was never a map range
	for _, x := range xs {
		total += x
	}
	return total
}

//ube:tolerate-flakiness no such directive exists
func unknownDirective() {}

// decl carries a declaration directive: consumed by analysis setup, so
// never reported stale.
type decl struct {
	//ube:operational fixture timing field
	t int64
}
