// Package atomicmix is the atomicmix check's fixture corpus: fields and
// variables reached both through sync/atomic functions and as plain
// reads/writes, against the clean shapes (typed atomics, consistently
// atomic access, annotated cold-path reads).
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	miss  int64
	typed atomic.Int64
}

// bump is the sanctioned access: function-style atomics on hits.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// load reads the same field atomically — silent.
func load(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

// raceRead reads hits plainly: it races with every bump.
func raceRead(c *counters) int64 {
	return c.hits // want atomicmix
}

// raceWrite resets hits plainly: same race, write side.
func raceWrite(c *counters) {
	c.hits = 0 // want atomicmix
}

// plainOnly touches a field no atomic ever reaches — silent.
func plainOnly(c *counters) int64 {
	return c.miss
}

// typedOnly uses a typed atomic: the type system already forbids plain
// access, so the check has nothing to add — silent.
func typedOnly(c *counters) int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

// readGlobalAnnotated documents a cold-path read that tolerates a torn
// value — silent via the suppression.
func readGlobalAnnotated() int64 {
	//ube:atomic-ok init-time read before any goroutine starts
	return global
}
