package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The module-wide call graph underlying the taintflow analysis.
//
// Nodes are package-level functions, methods, and function literals
// (closures) across every loaded package. Call sites resolve to callee
// sets, conservatively:
//
//   - a direct call of a declared function or method resolves to it;
//   - a call through an interface method resolves to that method on
//     EVERY module type implementing the interface (we cannot know which
//     implementation is behind the value, so taint must assume all);
//   - a call of a variable, parameter or struct field of function type
//     resolves to every function value that was ever assigned into that
//     object anywhere in the module — which covers method values
//     (f := t.M), stored closures, and callback fields;
//   - a call of a function literal in place resolves to the literal.
//
// The flows map that powers the third rule is itself a fixpoint: function
// values propagate through chains of assignments (f := g; h := f) and
// through call arguments into parameters.

// fnode is one call-graph node: a declared function/method (obj != nil)
// or a function literal (lit != nil).
type fnode struct {
	obj  *types.Func
	lit  *ast.FuncLit
	pkg  *Package
	body *ast.BlockStmt
	name string // stable display name, e.g. "pkg.Fn", "pkg.(*T).M", "pkg.Fn$1"
}

type callGraph struct {
	pkgs []*Package
	// nodes by identity: *types.Func for declared, *ast.FuncLit for closures.
	nodes map[any]*fnode
	// ordered lists every node in deterministic (package, position) order.
	ordered []*fnode
	// callees resolves each call site to its possible callee nodes.
	callees map[*ast.CallExpr][]*fnode
	// enclosing maps each call site to the node whose body contains it.
	enclosing map[*ast.CallExpr]*fnode
	// flows records, per variable/field object of function type, every
	// function value that may be stored in it.
	flows map[types.Object][]*fnode
	// implementers caches interface method -> concrete module methods.
	implementers map[*types.Func][]*fnode
	// namedTypes is every named type declared in the module.
	namedTypes []*types.Named
}

// buildCallGraph indexes every function in pkgs and resolves call sites.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{
		pkgs:         pkgs,
		nodes:        make(map[any]*fnode),
		callees:      make(map[*ast.CallExpr][]*fnode),
		enclosing:    make(map[*ast.CallExpr]*fnode),
		flows:        make(map[types.Object][]*fnode),
		implementers: make(map[*types.Func][]*fnode),
	}
	cg.indexDecls()
	cg.collectFlows()
	cg.resolveCalls()
	return cg
}

// indexDecls creates a node per declared function/method and per function
// literal, and collects the module's named types for interface dispatch.
func (cg *callGraph) indexDecls() {
	for _, p := range cg.pkgs {
		for _, name := range p.Types.Scope().Names() {
			if tn, ok := p.Types.Scope().Lookup(name).(*types.TypeName); ok {
				if named, ok := tn.Type().(*types.Named); ok {
					cg.namedTypes = append(cg.namedTypes, named)
				}
			}
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &fnode{obj: obj, pkg: p, body: fd.Body, name: nodeName(p, obj)}
				cg.nodes[obj] = n
				cg.ordered = append(cg.ordered, n)
				// Closures are named after their enclosing function in
				// source order: Fn$1, Fn$2, nested ones Fn$1$1.
				cg.indexLits(p, fd.Body, n.name)
			}
		}
	}
}

// indexLits walks body creating nodes for function literals; counter
// numbering is by source order within the enclosing named scope.
func (cg *callGraph) indexLits(p *Package, body ast.Node, base string) {
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		name := fmt.Sprintf("%s$%d", base, count)
		node := &fnode{lit: lit, pkg: p, body: lit.Body, name: name}
		cg.nodes[lit] = node
		cg.ordered = append(cg.ordered, node)
		cg.indexLits(p, lit.Body, name)
		return false // nested literals handled by the recursive call
	})
}

func nodeName(p *Package, obj *types.Func) string {
	short := shortPkg(p.Path)
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s%s).%s", short, ptr, named.Obj().Name(), obj.Name())
		}
	}
	return short + "." + obj.Name()
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// node returns the fnode for a declared function object, or nil for
// functions outside the module (stdlib, interface methods).
func (cg *callGraph) node(obj *types.Func) *fnode { return cg.nodes[obj] }

// litNode returns the fnode for a function literal.
func (cg *callGraph) litNode(lit *ast.FuncLit) *fnode { return cg.nodes[lit] }

// funcValues resolves an expression to the function values it may carry:
// a function/method identifier (including method values), a function
// literal, or — transitively — the recorded flows of a variable or field.
func (cg *callGraph) funcValues(p *Package, e ast.Expr) []*fnode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := cg.litNode(e); n != nil {
			return []*fnode{n}
		}
	case *ast.Ident:
		switch obj := p.Info.Uses[e].(type) {
		case *types.Func:
			if n := cg.node(obj); n != nil {
				return []*fnode{n}
			}
		case *types.Var:
			return cg.flows[obj]
		}
	case *ast.SelectorExpr:
		switch obj := p.Info.Uses[e.Sel].(type) {
		case *types.Func:
			// Method value t.M or package-qualified pkg.Fn.
			if n := cg.node(obj); n != nil {
				return []*fnode{n}
			}
			return cg.interfaceImpls(obj) // interface method value
		case *types.Var:
			return cg.flows[obj] // struct field of function type
		}
	case *ast.CallExpr:
		// A call returning a function: resolve via the callees' single
		// result when unambiguous is overkill; treat as unknown.
	}
	return nil
}

// collectFlows records every function value stored into a variable,
// parameter or struct field, iterating to fixpoint so values propagate
// through assignment chains and call arguments.
func (cg *callGraph) collectFlows() {
	for {
		changed := false
		add := func(obj types.Object, vals []*fnode) {
			if obj == nil || len(vals) == 0 {
				return
			}
			have := cg.flows[obj]
		next:
			for _, v := range vals {
				for _, h := range have {
					if h == v {
						continue next
					}
				}
				have = append(have, v)
				changed = true
			}
			cg.flows[obj] = have
		}
		for _, p := range cg.pkgs {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.AssignStmt:
						if len(n.Lhs) == len(n.Rhs) {
							for i := range n.Lhs {
								add(cg.lvalueObject(p, n.Lhs[i]), cg.funcValues(p, n.Rhs[i]))
							}
						}
					case *ast.ValueSpec:
						if len(n.Names) == len(n.Values) {
							for i := range n.Names {
								add(p.Info.Defs[n.Names[i]], cg.funcValues(p, n.Values[i]))
							}
						}
					case *ast.CompositeLit:
						cg.flowComposite(p, n, add)
					case *ast.CallExpr:
						cg.flowCallArgs(p, n, add)
					}
					return true
				})
			}
		}
		if !changed {
			return
		}
	}
}

// lvalueObject resolves an assignment target to its variable or field
// object (nil for indexed/starred targets, which function-value tracking
// ignores).
func (cg *callGraph) lvalueObject(p *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Defs[e]; obj != nil {
			return obj
		}
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// flowComposite records function values assigned through composite
// literal fields: search.Problem{Objective: f} flows f into the
// Objective field object.
func (cg *callGraph) flowComposite(p *Package, cl *ast.CompositeLit, add func(types.Object, []*fnode)) {
	st := structTypeOf(p, cl)
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					add(obj, cg.funcValues(p, kv.Value))
				}
			}
			continue
		}
		if st != nil && i < st.NumFields() {
			add(st.Field(i), cg.funcValues(p, elt))
		}
	}
}

func structTypeOf(p *Package, cl *ast.CompositeLit) *types.Struct {
	t := p.Info.TypeOf(cl)
	if t == nil {
		return nil
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// flowCallArgs flows function-valued arguments into the parameters of
// every module callee the call may reach (so a callback passed into a
// dispatcher is a callee of the dispatcher's invocation sites).
func (cg *callGraph) flowCallArgs(p *Package, call *ast.CallExpr, add func(types.Object, []*fnode)) {
	for _, callee := range cg.staticCallees(p, call) {
		if callee.obj == nil {
			continue
		}
		sig, ok := callee.obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := sig.Params()
		for i, arg := range call.Args {
			vals := cg.funcValues(p, arg)
			if len(vals) == 0 {
				continue
			}
			pi := i
			if sig.Variadic() && pi >= params.Len()-1 {
				pi = params.Len() - 1
			}
			if pi < params.Len() {
				add(params.At(pi), vals)
			}
		}
	}
}

// staticCallees resolves only the non-flow part of a call (direct
// functions, methods, interface dispatch, immediate literals) — used
// while flows are still being computed.
func (cg *callGraph) staticCallees(p *Package, call *ast.CallExpr) []*fnode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if n := cg.litNode(fun); n != nil {
			return []*fnode{n}
		}
	case *ast.Ident:
		if obj, ok := p.Info.Uses[fun].(*types.Func); ok {
			if n := cg.node(obj); n != nil {
				return []*fnode{n}
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := cg.node(obj); n != nil {
				return []*fnode{n}
			}
			return cg.interfaceImpls(obj)
		}
	}
	return nil
}

// resolveCalls computes the final callee set per call site and the
// enclosing node per call.
func (cg *callGraph) resolveCalls() {
	for _, n := range cg.ordered {
		node := n
		ast.Inspect(n.body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // literal bodies belong to their own node
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			cg.enclosing[call] = node
			callees := cg.staticCallees(n.pkg, call)
			if len(callees) == 0 {
				// Calls through variables/fields of function type.
				callees = cg.funcValues(n.pkg, call.Fun)
			}
			if len(callees) > 0 {
				cg.callees[call] = callees
			}
			return true
		})
	}
}

// interfaceImpls returns the concrete module methods that a call of the
// given interface method may dispatch to: method M of every module type
// implementing the interface.
func (cg *callGraph) interfaceImpls(m *types.Func) []*fnode {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if impls, ok := cg.implementers[m]; ok {
		return impls
	}
	var impls []*fnode
	for _, named := range cg.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if n := cg.node(fn); n != nil {
				impls = append(impls, n)
			}
		}
	}
	cg.implementers[m] = impls
	return impls
}

// edges renders the graph as sorted, deduplicated "caller -> callee"
// strings — the representation the call-graph tests pin.
func (cg *callGraph) edges() []string {
	seen := make(map[string]bool)
	var out []string
	for call, callees := range cg.callees {
		from := cg.enclosing[call]
		if from == nil {
			continue
		}
		for _, to := range callees {
			e := from.name + " -> " + to.name
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Strings(out)
	return out
}
