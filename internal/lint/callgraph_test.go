package lint

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadCallGraph builds the call graph over one fixture package.
func loadCallGraph(t *testing.T, name string) *callGraph {
	t.Helper()
	l, err := newLoader(nil)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.load([]string{filepath.Join("testdata", "src", name)})
	if err != nil {
		t.Fatal(err)
	}
	return buildCallGraph(pkgs)
}

// TestCallGraphEdges pins the exact callee set for each shape the
// builder must resolve: direct calls, interface dispatch (conservative
// edges to every module implementer), method values, nested closures,
// callback parameters and function-typed struct fields.
func TestCallGraphEdges(t *testing.T) {
	cg := loadCallGraph(t, "callgraph")
	edges := cg.edges()

	callees := make(map[string][]string)
	for _, e := range edges {
		from, to, ok := strings.Cut(e, " -> ")
		if !ok {
			t.Fatalf("malformed edge %q", e)
		}
		callees[from] = append(callees[from], to)
	}

	cases := []struct {
		from string
		want []string
	}{
		{"callgraph.direct", []string{"callgraph.speak"}},
		{"callgraph.speak", []string{"callgraph.(english).greet", "callgraph.(pirate).greet"}},
		{"callgraph.methodValue", []string{"callgraph.(english).greet"}},
		{"callgraph.closures", []string{"callgraph.closures$2"}},
		{"callgraph.closures$2", []string{"callgraph.closures$1"}},
		{"callgraph.useApply", []string{"callgraph.apply"}},
		{"callgraph.apply", []string{"callgraph.useApply$1"}},
		{"callgraph.viaField", []string{"callgraph.viaField$1"}},
	}
	for _, tc := range cases {
		t.Run(tc.from, func(t *testing.T) {
			got := append([]string(nil), callees[tc.from]...)
			sort.Strings(got)
			want := append([]string(nil), tc.want...)
			sort.Strings(want)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("callees of %s = %v, want %v", tc.from, got, want)
			}
		})
	}

	// No edges beyond the tabled ones: leaves and literals call nothing.
	total := 0
	for _, tc := range cases {
		total += len(tc.want)
	}
	if len(edges) != total {
		t.Errorf("%d edges, want %d:\n%s", len(edges), total, strings.Join(edges, "\n"))
	}
}
