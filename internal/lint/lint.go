// Package lint is ube-lint's engine: a µBE-specific static analyzer built
// purely on the standard library's go/parser, go/ast and go/types (no
// golang.org/x/tools). It machine-checks the invariants the incremental
// evaluation pipeline rests on — solve determinism, float discipline,
// sync.Pool hygiene, the DeltaObjective fallback protocol, interprocedural
// nondeterminism taint flow, and lock/atomic discipline — as named,
// individually suppressible checks. See DESIGN.md ("Invariant catalog" and
// "Determinism taint analysis") for what each check guards and why.
//
// Suppression is by source annotation on the offending line or the line
// directly above it:
//
//	ube:nondeterministic-ok <reason>   maprange, wallclock, globalrand, goroutineid
//	ube:float-exact <reason>           floateq
//	ube:pool-escape <reason>           poolput
//	ube:taint-ok <reason>              taintflow
//	ube:lock-ok <reason>               lockpair
//	ube:lock-held-ok <reason>          lockblock
//	ube:atomic-ok <reason>             atomicmix
//	ube:lint-ignore <check> <reason>   any single check by name
//
// (each written as a //-comment beginning with "//ube:"). Two further
// directives are declarations rather than suppressions:
//
//	ube:operational <reason>   on a struct field: the field holds
//	                           operational (non-canonical) data — typings,
//	                           TTL stamps — that never reaches a canonical
//	                           surface; the taint analysis treats writes
//	                           into it as absorbed, not as flows
//	ube:taint-sink <reason>    on a function declaration: every argument
//	                           at every call site is a determinism sink
//
// Annotations are deliberately check-scoped: a float-exact never silences
// a map-range diagnostic, so a suppression cannot hide an unrelated
// regression on the same line. The stalesuppress check closes the other
// direction: a suppression that no longer suppresses anything (stale
// after a refactor) is itself a diagnostic.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// CheckNames lists every implemented check in stable order.
// determinismScopedChecks names the checks gated on DeterminismPaths;
// everything else runs module-wide.
var determinismScopedChecks = map[string]bool{
	"maprange": true, "wallclock": true, "globalrand": true, "goroutineid": true,
}

var CheckNames = []string{
	"maprange",
	"wallclock",
	"globalrand",
	"goroutineid",
	"floateq",
	"poolput",
	"deltafallback",
	"taintflow",
	"lockpair",
	"lockblock",
	"atomicmix",
	"stalesuppress",
}

// CheckDocs is a one-line description per check, for -list output.
var CheckDocs = map[string]string{
	"maprange":      "no `for range` over a map in determinism-scoped packages unless the body only collects keys for sorting or the site is annotated",
	"wallclock":     "no time.Now/time.Since in determinism-scoped packages (solve results must not read the clock)",
	"globalrand":    "no math/rand global functions in determinism-scoped packages (randomness must flow through an injected seeded *rand.Rand)",
	"goroutineid":   "no runtime.Stack/runtime.NumGoroutine goroutine-identity tricks in determinism-scoped packages",
	"floateq":       "no ==/!= on float operands (including switch on a float tag) outside _test.go files (route comparisons through an epsilon helper or annotate the exact sentinel)",
	"poolput":       "every sync.Pool Get must reach a Put on the function's return paths, or be an annotated escape",
	"deltafallback": "any function calling a .DeltaObjective field must nil-check it and fall back to .Objective",
	"taintflow":     "no nondeterministic value (clock, global rand, machine identity, pointer formatting, select winner) may flow — through assignments, fields, returns and calls, module-wide — into a determinism sink (objective functions, deterministic trace counters, schemaio encoders, session history)",
	"lockpair":      "no return path may leave a mutex locked: every Lock/RLock is paired with an Unlock/RUnlock on each path, or deferred",
	"lockblock":     "no blocking operation (channel send/recv, select without default, Wait, Sleep, fault-injection points) while a mutex is held",
	"atomicmix":     "a field or variable accessed through sync/atomic functions must not also be accessed as a plain read/write in the same package",
	"stalesuppress": "every //ube: suppression must suppress at least one diagnostic; stale annotations (and unknown directives) are reported so refactors cannot leave dead exemptions behind",
}

// suppressDirectives maps each check to its dedicated annotation word
// ("" when the check has only lint-ignore).
var suppressDirectives = map[string]string{
	"maprange":      "nondeterministic-ok",
	"wallclock":     "nondeterministic-ok",
	"globalrand":    "nondeterministic-ok",
	"goroutineid":   "nondeterministic-ok",
	"floateq":       "float-exact",
	"poolput":       "pool-escape",
	"deltafallback": "",
	"taintflow":     "taint-ok",
	"lockpair":      "lock-ok",
	"lockblock":     "lock-held-ok",
	"atomicmix":     "atomic-ok",
	"stalesuppress": "",
}

// knownDirectives is every annotation word the analyzer understands;
// anything else after "//ube:" is reported by stalesuppress as unknown.
var knownDirectives = map[string]bool{
	"nondeterministic-ok": true,
	"float-exact":         true,
	"pool-escape":         true,
	"taint-ok":            true,
	"lock-ok":             true,
	"lock-held-ok":        true,
	"atomic-ok":           true,
	"lint-ignore":         true,
	"operational":         true,
	"taint-sink":          true,
}

// declarationDirectives are consumed by analysis setup rather than by
// diagnostic suppression; stalesuppress never flags them as unused.
var declarationDirectives = map[string]bool{
	"operational": true,
	"taint-sink":  true,
}

// SuppressionFor renders the annotation that silences a diagnostic of the
// given check, for machine-readable output.
func SuppressionFor(check string) string {
	if d := suppressDirectives[check]; d != "" {
		return "//ube:" + d
	}
	return "//ube:lint-ignore " + check
}

// DefaultDeterminismPaths are the packages whose solves must be
// bit-reproducible: the determinism checks (maprange, wallclock,
// globalrand, goroutineid) apply only inside them. Matching is by
// substring on the package import path. The taintflow check is
// deliberately NOT scoped: a timestamp minted in an out-of-scope package
// is still a finding when it flows into a sink.
var DefaultDeterminismPaths = []string{
	"ube/internal/search",
	"ube/internal/engine",
	"ube/internal/cluster",
	"ube/internal/qef",
	"ube/internal/pcsa",
	// The session service and its load generator sit on top of solves
	// whose determinism they must not perturb: any clock read, map walk
	// or global-rand draw there is either genuinely operational (and
	// annotated as such at the site) or a contract violation.
	"ube/internal/server",
	"ube/cmd/ube-load",
	// Fault injection must be replayable from a seed: firing decisions
	// are pure functions of per-point arrival counts, so the injector
	// itself may not read the clock or the global rand either.
	"ube/internal/faultinject",
	// The span tracer's counter payloads are part of the reproducible
	// surface (canonical traces are byte-compared); only its explicitly
	// annotated timing sites may touch the clock.
	"ube/internal/trace",
	// The blocking index feeds the sparse similarity table whose
	// candidate order and stats are byte-compared against the dense
	// path; a map walk or clock read there breaks sparse≡dense.
	"ube/internal/strsim",
	// The router's placement (hash ring) and fault firing must be pure
	// functions of their inputs — a clock read or map walk in a routing
	// decision would re-home sessions between restarts or make chaos
	// runs unreplayable. Probe timing is operational and annotated.
	"ube/internal/router",
	// Durable recovery replays WAL records through the engine and must
	// land bit-identical; the audit chain's record bytes are hashed, so
	// any nondeterminism there breaks verification. Flush timing and
	// latency accounting are operational and annotated at the site.
	"ube/internal/wal",
	"ube/internal/auditlog",
}

// Config tunes a run.
type Config struct {
	// Checks enables a subset of CheckNames; empty means all.
	Checks []string
	// ExcludeChecks disables checks by name; applied after Checks.
	ExcludeChecks []string
	// DeterminismPaths overrides DefaultDeterminismPaths (import-path
	// substrings); nil means the default.
	DeterminismPaths []string
	// BuildTags adds build tags to the file-selection context.
	BuildTags []string
}

func (c *Config) enabled(check string) bool {
	for _, name := range c.ExcludeChecks {
		if name == check {
			return false
		}
	}
	if len(c.Checks) == 0 {
		return true
	}
	for _, name := range c.Checks {
		if name == check {
			return true
		}
	}
	return false
}

// allEnabled reports whether every check runs — the precondition for
// staleness accounting (a disabled check cannot mark its suppressions
// used, so flagging them would be wrong).
func (c *Config) allEnabled() bool {
	for _, name := range CheckNames {
		if name != "stalesuppress" && !c.enabled(name) {
			return false
		}
	}
	return true
}

func (c *Config) determinismScoped(pkgPath string) bool {
	paths := c.DeterminismPaths
	if paths == nil {
		paths = DefaultDeterminismPaths
	}
	for _, p := range paths {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// jsonDiagnostic is the -format json shape of one diagnostic.
type jsonDiagnostic struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Check       string `json:"check"`
	Message     string `json:"message"`
	Suppression string `json:"suppression"`
}

// WriteJSON renders diagnostics as a JSON array (never null) of
// {file,line,col,check,message,suppression} objects, one suppression
// being the annotation that would silence that diagnostic.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:        d.Pos.Filename,
			Line:        d.Pos.Line,
			Col:         d.Pos.Column,
			Check:       d.Check,
			Message:     d.Message,
			Suppression: SuppressionFor(d.Check),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Run loads the packages matched by the patterns and applies every enabled
// check, returning diagnostics sorted by position. The syntactic checks
// run per package; taintflow builds a module-wide call graph over every
// loaded package and propagates taint across package boundaries.
func Run(patterns []string, cfg Config) ([]Diagnostic, error) {
	l, err := newLoader(cfg.BuildTags)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.load(patterns)
	if err != nil {
		return nil, err
	}

	ann := newAnnIndex()
	for _, p := range pkgs {
		scoped := cfg.determinismScoped(p.Path)
		for _, f := range p.Files {
			ann.collect(p.Fset, f, scoped)
		}
	}

	var diags []Diagnostic
	for _, p := range pkgs {
		c := &checker{pkg: p, cfg: &cfg, ann: ann, determinism: cfg.determinismScoped(p.Path)}
		for _, f := range p.Files {
			c.checkFile(f)
		}
		c.checkAtomicMix()
		diags = append(diags, c.diags...)
	}

	if cfg.enabled("taintflow") {
		ta := newTaintAnalysis(pkgs, ann, &cfg)
		diags = append(diags, ta.run()...)
	}
	if cfg.enabled("stalesuppress") && cfg.allEnabled() {
		diags = append(diags, ann.staleDiagnostics()...)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// annSite is one parsed //ube: annotation instance.
type annSite struct {
	pos    token.Position // of the comment
	word   string         // directive word ("float-exact", "lint-ignore", ...)
	rest   string         // everything after the word
	scoped bool           // owning package is determinism-scoped this run
	used   bool           // consumed by a suppression match or a declaration
}

// annIndex holds every //ube: directive of the run, indexed by file and
// line, with per-site usage accounting for the stalesuppress check.
type annIndex struct {
	byLine map[string]map[int][]*annSite
	sites  []*annSite // in collection order (file/line sorted at report time)
}

func newAnnIndex() *annIndex {
	return &annIndex{byLine: make(map[string]map[int][]*annSite)}
}

func (a *annIndex) collect(fset *token.FileSet, f *ast.File, scoped bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//ube:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			word, tail, _ := strings.Cut(strings.TrimSpace(rest), " ")
			site := &annSite{pos: pos, word: word, rest: strings.TrimSpace(tail), scoped: scoped}
			lines := a.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int][]*annSite)
				a.byLine[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], site)
			a.sites = append(a.sites, site)
		}
	}
}

// suppressed reports whether a diagnostic of the given check at pos is
// silenced by an annotation on the same line or the line above, marking
// any matching annotation used. directive is the check's dedicated
// annotation word ("" when the check has none); `lint-ignore <check>`
// works for every check.
func (a *annIndex) suppressed(fset *token.FileSet, pos token.Pos, check, directive string) bool {
	p := fset.Position(pos)
	hit := false
	for _, l := range [2]int{p.Line, p.Line - 1} {
		for _, site := range a.byLine[p.Filename][l] {
			if directive != "" && site.word == directive {
				site.used = true
				hit = true
			}
			if site.word == "lint-ignore" {
				ignored, _, _ := strings.Cut(site.rest, " ")
				if ignored == check {
					site.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// declarationsAt returns the declaration annotations (operational,
// taint-sink) attached to the line of pos or the line above, marking them
// used.
func (a *annIndex) declarationsAt(fset *token.FileSet, pos token.Pos, word string) bool {
	p := fset.Position(pos)
	found := false
	for _, l := range [2]int{p.Line, p.Line - 1} {
		for _, site := range a.byLine[p.Filename][l] {
			if site.word == word {
				site.used = true
				found = true
			}
		}
	}
	return found
}

// staleDiagnostics reports every suppression annotation that never
// suppressed a diagnostic this run, plus unknown directive words. The
// caller guarantees all checks ran (otherwise unused is meaningless).
func (a *annIndex) staleDiagnostics() []Diagnostic {
	var diags []Diagnostic
	for _, site := range a.sites {
		if site.used {
			continue
		}
		if !knownDirectives[site.word] {
			diags = append(diags, Diagnostic{
				Pos:     site.pos,
				Check:   "stalesuppress",
				Message: fmt.Sprintf("unknown //ube: directive %q (known: nondeterministic-ok, float-exact, pool-escape, taint-ok, lock-ok, lock-held-ok, atomic-ok, lint-ignore, operational, taint-sink)", site.word),
			})
			continue
		}
		if declarationDirectives[site.word] {
			continue // declarations are consumed by setup, not suppression
		}
		// Suppressions for determinism-scoped checks are only judged in
		// packages where those checks ran; outside the scope "unused" says
		// nothing about whether the annotation still earns its keep.
		if !site.scoped {
			if site.word == "nondeterministic-ok" {
				continue
			}
			if site.word == "lint-ignore" {
				ignored, _, _ := strings.Cut(site.rest, " ")
				if determinismScopedChecks[ignored] {
					continue
				}
			}
		}
		// A lint-ignore for a suppressed-by-position check names the check.
		what := "//ube:" + site.word
		if site.word == "lint-ignore" {
			ignored, _, _ := strings.Cut(site.rest, " ")
			what = "//ube:lint-ignore " + ignored
		}
		diags = append(diags, Diagnostic{
			Pos:     site.pos,
			Check:   "stalesuppress",
			Message: fmt.Sprintf("%s suppresses nothing here (no matching diagnostic on this line or the line below); delete the stale annotation", what),
		})
	}
	return diags
}

type checker struct {
	pkg         *Package
	cfg         *Config
	determinism bool
	ann         *annIndex
	diags       []Diagnostic
}

func (c *checker) report(pos token.Pos, check, directive, format string, args ...any) {
	if !c.cfg.enabled(check) {
		return
	}
	if c.ann.suppressed(c.pkg.Fset, pos, check, directive) {
		return
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}
