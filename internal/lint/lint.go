// Package lint is ube-lint's engine: a µBE-specific static analyzer built
// purely on the standard library's go/parser, go/ast and go/types (no
// golang.org/x/tools). It machine-checks the invariants the incremental
// evaluation pipeline rests on — solve determinism, float discipline,
// sync.Pool hygiene and the DeltaObjective fallback protocol — as named,
// individually suppressible checks. See DESIGN.md ("Invariant catalog")
// for what each check guards and why.
//
// Suppression is by source annotation on the offending line or the line
// directly above it:
//
//	//ube:nondeterministic-ok <reason>   maprange, wallclock, globalrand, goroutineid
//	//ube:float-exact <reason>           floateq
//	//ube:pool-escape <reason>           poolput
//	//ube:lint-ignore <check> <reason>   any single check by name
//
// Annotations are deliberately check-scoped: a //ube:float-exact never
// silences a map-range diagnostic, so a suppression cannot hide an
// unrelated regression on the same line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// CheckNames lists every implemented check in stable order.
var CheckNames = []string{
	"maprange",
	"wallclock",
	"globalrand",
	"goroutineid",
	"floateq",
	"poolput",
	"deltafallback",
}

// CheckDocs is a one-line description per check, for -list output.
var CheckDocs = map[string]string{
	"maprange":      "no `for range` over a map in determinism-scoped packages unless the body only collects keys for sorting or the site is annotated",
	"wallclock":     "no time.Now/time.Since in determinism-scoped packages (solve results must not read the clock)",
	"globalrand":    "no math/rand global functions in determinism-scoped packages (randomness must flow through an injected seeded *rand.Rand)",
	"goroutineid":   "no runtime.Stack/runtime.NumGoroutine goroutine-identity tricks in determinism-scoped packages",
	"floateq":       "no ==/!= on float operands outside _test.go files (route comparisons through an epsilon helper or annotate the exact sentinel)",
	"poolput":       "every sync.Pool Get must reach a Put on the function's return paths, or be an annotated escape",
	"deltafallback": "any function calling a .DeltaObjective field must nil-check it and fall back to .Objective",
}

// DefaultDeterminismPaths are the packages whose solves must be
// bit-reproducible: the determinism checks (maprange, wallclock,
// globalrand, goroutineid) apply only inside them. Matching is by
// substring on the package import path.
var DefaultDeterminismPaths = []string{
	"ube/internal/search",
	"ube/internal/engine",
	"ube/internal/cluster",
	"ube/internal/qef",
	"ube/internal/pcsa",
	// The session service and its load generator sit on top of solves
	// whose determinism they must not perturb: any clock read, map walk
	// or global-rand draw there is either genuinely operational (and
	// annotated as such at the site) or a contract violation.
	"ube/internal/server",
	"ube/cmd/ube-load",
	// Fault injection must be replayable from a seed: firing decisions
	// are pure functions of per-point arrival counts, so the injector
	// itself may not read the clock or the global rand either.
	"ube/internal/faultinject",
	// The span tracer's counter payloads are part of the reproducible
	// surface (canonical traces are byte-compared); only its explicitly
	// annotated timing sites may touch the clock.
	"ube/internal/trace",
	// The blocking index feeds the sparse similarity table whose
	// candidate order and stats are byte-compared against the dense
	// path; a map walk or clock read there breaks sparse≡dense.
	"ube/internal/strsim",
}

// Config tunes a run.
type Config struct {
	// Checks enables a subset of CheckNames; empty means all.
	Checks []string
	// DeterminismPaths overrides DefaultDeterminismPaths (import-path
	// substrings); nil means the default.
	DeterminismPaths []string
	// BuildTags adds build tags to the file-selection context.
	BuildTags []string
}

func (c *Config) enabled(check string) bool {
	if len(c.Checks) == 0 {
		return true
	}
	for _, name := range c.Checks {
		if name == check {
			return true
		}
	}
	return false
}

func (c *Config) determinismScoped(pkgPath string) bool {
	paths := c.DeterminismPaths
	if paths == nil {
		paths = DefaultDeterminismPaths
	}
	for _, p := range paths {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Run loads the packages matched by the patterns and applies every enabled
// check, returning diagnostics sorted by position.
func Run(patterns []string, cfg Config) ([]Diagnostic, error) {
	l, err := newLoader(cfg.BuildTags)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.load(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, checkPackage(p, &cfg)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// annotations indexes a file's //ube: directives by line.
type annotations struct {
	byLine map[int][]string // line -> directive words ("nondeterministic-ok", "lint-ignore maprange", ...)
}

func collectAnnotations(fset *token.FileSet, f *ast.File) *annotations {
	a := &annotations{byLine: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if rest, ok := strings.CutPrefix(text, "//ube:"); ok {
				line := fset.Position(c.Pos()).Line
				a.byLine[line] = append(a.byLine[line], strings.TrimSpace(rest))
			}
		}
	}
	return a
}

// suppressed reports whether a diagnostic of the given check at pos is
// silenced by an annotation on the same line or the line above. directive
// is the check's dedicated annotation word ("" when the check has none);
// `lint-ignore <check>` works for every check.
func (a *annotations) suppressed(fset *token.FileSet, pos token.Pos, check, directive string) bool {
	line := fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range a.byLine[l] {
			word, rest, _ := strings.Cut(d, " ")
			if directive != "" && word == directive {
				return true
			}
			if word == "lint-ignore" {
				ignored, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if ignored == check {
					return true
				}
			}
		}
	}
	return false
}

// checkPackage applies every enabled check to one package.
func checkPackage(p *Package, cfg *Config) []Diagnostic {
	c := &checker{pkg: p, cfg: cfg, determinism: cfg.determinismScoped(p.Path)}
	for _, f := range p.Files {
		c.ann = collectAnnotations(p.Fset, f)
		c.checkFile(f)
	}
	return c.diags
}

type checker struct {
	pkg         *Package
	cfg         *Config
	determinism bool
	ann         *annotations
	diags       []Diagnostic
}

func (c *checker) report(pos token.Pos, check, directive, format string, args ...any) {
	if !c.cfg.enabled(check) {
		return
	}
	if c.ann.suppressed(c.pkg.Fset, pos, check, directive) {
		return
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:     c.pkg.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}
