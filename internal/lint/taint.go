package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// The taintflow check: a module-wide, flow-insensitive, field-sensitive
// taint analysis over the call graph.
//
// Sources are the nondeterminism catalog — clock reads, global-RNG draws,
// goroutine/machine identity, pointer formatting (%p, unsafe.Pointer →
// uintptr), and select winners (a variable assigned in two or more comm
// clauses of one select). A //ube:nondeterministic-ok annotation silences
// the call-site check (wallclock &c.) but does NOT stop the taint: the
// produced value stays tracked, so a blessed timestamp that later leaks
// into a canonical surface is still a finding — at the leak.
//
// Taint propagates through assignments, struct fields (per-field: one
// tainted field never taints its siblings or the struct value), function
// returns, call arguments (interprocedurally, over the call graph's
// conservative callee sets), channels, and containers. Calls outside the
// module conservatively taint their result when any argument or the
// receiver is tainted. Control flow is NOT tracked: branching on a tainted
// condition does not taint the branches (the maprange/wallclock site
// checks own that class).
//
// Sinks are the surfaces the determinism contract protects:
//
//   - (*trace.Stats).Add with a deterministic counter (operational
//     counters — at or past OSnapshotBuilds — are exempt by definition);
//   - ube/internal/schemaio Encode* functions (canonical wire payloads);
//   - engine.Session.history and the server's handler-visible history
//     mirrors (session.historyDocs, session.solutions);
//   - search.Problem.Objective / .DeltaObjective — both a tainted value
//     assigned into them and an objective function whose RESULT is
//     tainted;
//   - any function declared //ube:taint-sink.
//
// Struct fields declared //ube:operational absorb taint: a write of a
// tainted value into them is legal (they are non-canonical by contract —
// Canonical strips them, goldens never compare them) and reads from them
// are clean. That is the per-field policy that keeps Span.Start,
// session TTL stamps and Solution.Elapsed legal while their neighbors
// stay guarded.

// witness records where a tainted value was minted.
type witness struct {
	pos  token.Position
	desc string
}

func (w *witness) String() string {
	return fmt.Sprintf("%s at %s:%d", w.desc, filepath.Base(w.pos.Filename), w.pos.Line)
}

// sinkField identifies one built-in sink field by location.
type sinkField struct {
	desc      string
	objective bool // also reject objective function values with tainted results
}

type taintAnalysis struct {
	pkgs []*Package
	ann  *annIndex
	cfg  *Config
	cg   *callGraph

	taint       map[types.Object]*witness
	result      map[*fnode][]*witness // per result index; nil entry = clean
	operational map[*types.Var]bool
	sinkFields  map[*types.Var]sinkField
	sinkFuncs   map[*types.Func]string // declared //ube:taint-sink, by reason

	changed bool
	diags   []Diagnostic
}

func newTaintAnalysis(pkgs []*Package, ann *annIndex, cfg *Config) *taintAnalysis {
	return &taintAnalysis{
		pkgs:        pkgs,
		ann:         ann,
		cfg:         cfg,
		taint:       make(map[types.Object]*witness),
		result:      make(map[*fnode][]*witness),
		operational: make(map[*types.Var]bool),
		sinkFields:  make(map[*types.Var]sinkField),
		sinkFuncs:   make(map[*types.Func]string),
	}
}

func (ta *taintAnalysis) run() []Diagnostic {
	ta.cg = buildCallGraph(ta.pkgs)
	ta.collectPolicy()
	for round := 0; round < 64; round++ {
		ta.changed = false
		for _, n := range ta.cg.ordered {
			ta.propagate(n)
		}
		if !ta.changed {
			break
		}
	}
	for _, n := range ta.cg.ordered {
		ta.checkSinks(n)
	}
	return ta.diags
}

// collectPolicy gathers //ube:operational field declarations,
// //ube:taint-sink function declarations, and the built-in sink fields.
func (ta *taintAnalysis) collectPolicy() {
	for _, p := range ta.pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.StructType:
					for _, field := range n.Fields.List {
						for _, name := range field.Names {
							if ta.ann.declarationsAt(p.Fset, name.Pos(), "operational") {
								if v, ok := p.Info.Defs[name].(*types.Var); ok {
									ta.operational[v] = true
								}
							}
						}
					}
				case *ast.FuncDecl:
					if ta.ann.declarationsAt(p.Fset, n.Pos(), "taint-sink") {
						if obj, ok := p.Info.Defs[n.Name].(*types.Func); ok {
							ta.sinkFuncs[obj] = "declared sink"
						}
					}
					return false
				}
				return true
			})
		}
	}
	ta.builtinSink("ube/internal/engine", "Session", "history", sinkField{desc: "the session history"})
	ta.builtinSink("ube/internal/server", "session", "historyDocs", sinkField{desc: "the handler-visible history mirror"})
	ta.builtinSink("ube/internal/server", "session", "solutions", sinkField{desc: "the handler-visible solution mirror"})
	ta.builtinSink("ube/internal/search", "Problem", "Objective", sinkField{desc: "the solver objective", objective: true})
	ta.builtinSink("ube/internal/search", "Problem", "DeltaObjective", sinkField{desc: "the solver delta objective", objective: true})
}

// builtinSink resolves pkg.Type.field to its field object and registers
// it as a sink. The package is found among the analyzed packages or —
// for fixture runs that analyze only an importer — anywhere in their
// transitive import closure.
func (ta *taintAnalysis) builtinSink(pkgPath, typeName, fieldName string, s sinkField) {
	tp := ta.findPackage(pkgPath)
	if tp == nil {
		return
	}
	obj, ok := tp.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == fieldName {
			ta.sinkFields[st.Field(i)] = s
			return
		}
	}
}

// findPackage locates a type-checked package by import path among the
// analyzed packages and their transitive imports.
func (ta *taintAnalysis) findPackage(path string) *types.Package {
	seen := make(map[*types.Package]bool)
	var find func(tp *types.Package) *types.Package
	find = func(tp *types.Package) *types.Package {
		if seen[tp] {
			return nil
		}
		seen[tp] = true
		if tp.Path() == path {
			return tp
		}
		for _, imp := range tp.Imports() {
			if hit := find(imp); hit != nil {
				return hit
			}
		}
		return nil
	}
	for _, p := range ta.pkgs {
		if hit := find(p.Types); hit != nil {
			return hit
		}
	}
	return nil
}

// setTaint marks an object tainted, keeping the first witness.
func (ta *taintAnalysis) setTaint(obj types.Object, w *witness) {
	if obj == nil || w == nil || obj.Name() == "_" {
		return
	}
	if v, ok := obj.(*types.Var); ok && ta.operational[v] {
		return // declared operational: the write is absorbed
	}
	if ta.taint[obj] == nil {
		ta.taint[obj] = w
		ta.changed = true
	}
}

// setResult marks result index i of a function tainted.
func (ta *taintAnalysis) setResult(n *fnode, i int, w *witness) {
	if n == nil || w == nil {
		return
	}
	rs := ta.result[n]
	for len(rs) <= i {
		rs = append(rs, nil)
	}
	if rs[i] == nil {
		rs[i] = w
		ta.changed = true
	}
	ta.result[n] = rs
}

func (ta *taintAnalysis) resultAny(n *fnode) *witness {
	for _, w := range ta.result[n] {
		if w != nil {
			return w
		}
	}
	return nil
}

// sig returns a node's signature.
func nodeSig(p *Package, n *fnode) *types.Signature {
	if n.obj != nil {
		s, _ := n.obj.Type().(*types.Signature)
		return s
	}
	s, _ := p.Info.TypeOf(n.lit).(*types.Signature)
	return s
}

// rootObject resolves an lvalue to the object that taint should land on:
// the identifier itself, a struct field, or — through indexing and
// dereferencing — the container/pointer root.
func (ta *taintAnalysis) rootObject(p *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Defs[e]; obj != nil {
			return obj
		}
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		if obj, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
			return obj
		}
		return nil
	case *ast.IndexExpr:
		return ta.rootObject(p, e.X)
	case *ast.StarExpr:
		return ta.rootObject(p, e.X)
	case *ast.SliceExpr:
		return ta.rootObject(p, e.X)
	}
	return nil
}

// propagate runs one round of taint transfer over one function body.
func (ta *taintAnalysis) propagate(n *fnode) {
	p := n.pkg
	ast.Inspect(n.body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // separate node
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			ta.propagateAssign(p, x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			if len(x.Values) > 0 {
				lhs := make([]ast.Expr, len(x.Names))
				for i, id := range x.Names {
					lhs[i] = id
				}
				ta.propagateAssign(p, lhs, x.Values)
			}
		case *ast.RangeStmt:
			if w := ta.exprTaint(p, x.X); w != nil {
				if x.Key != nil {
					ta.setTaint(ta.rootObject(p, x.Key), w)
				}
				if x.Value != nil {
					ta.setTaint(ta.rootObject(p, x.Value), w)
				}
			}
		case *ast.SendStmt:
			if w := ta.exprTaint(p, x.Value); w != nil {
				ta.setTaint(ta.rootObject(p, x.Chan), w)
			}
		case *ast.ReturnStmt:
			ta.propagateReturn(p, n, x)
		case *ast.SelectStmt:
			ta.propagateSelectWinner(p, x)
		case *ast.CallExpr:
			ta.propagateCall(p, x)
		case *ast.CompositeLit:
			ta.propagateComposite(p, x)
		}
		return true
	})
}

// propagateAssign transfers taint from rhs to lhs targets, including
// tuple assignments from calls, type assertions and map reads.
func (ta *taintAnalysis) propagateAssign(p *Package, lhs, rhs []ast.Expr) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			if w := ta.exprTaint(p, rhs[i]); w != nil {
				ta.setTaint(ta.rootObject(p, lhs[i]), w)
			}
		}
		return
	}
	if len(rhs) != 1 {
		return
	}
	switch r := ast.Unparen(rhs[0]).(type) {
	case *ast.CallExpr:
		ws := ta.callResultTaints(p, r, len(lhs))
		for i := range lhs {
			if i < len(ws) && ws[i] != nil {
				ta.setTaint(ta.rootObject(p, lhs[i]), ws[i])
			}
		}
	default:
		// v, ok := m[k] / x.(T) / <-ch: the value inherits the source's
		// taint, the bool does not.
		if w := ta.exprTaint(p, rhs[0]); w != nil {
			ta.setTaint(ta.rootObject(p, lhs[0]), w)
		}
	}
}

func (ta *taintAnalysis) propagateReturn(p *Package, n *fnode, ret *ast.ReturnStmt) {
	sig := nodeSig(p, n)
	if sig == nil {
		return
	}
	if len(ret.Results) == 0 {
		// Naked return: named results carry their current taint.
		for i := 0; i < sig.Results().Len(); i++ {
			if w := ta.taint[sig.Results().At(i)]; w != nil {
				ta.setResult(n, i, w)
			}
		}
		return
	}
	if len(ret.Results) == 1 && sig.Results().Len() > 1 {
		// return f(): forward the inner call's result taints.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			for i, w := range ta.callResultTaints(p, call, sig.Results().Len()) {
				ta.setResult(n, i, w)
			}
		}
		return
	}
	for i, e := range ret.Results {
		if w := ta.exprTaint(p, e); w != nil {
			ta.setResult(n, i, w)
		}
	}
}

// propagateSelectWinner applies the select-winner source: an object
// assigned in two or more comm-clause bodies of one select holds a value
// that depends on which case won the race.
func (ta *taintAnalysis) propagateSelectWinner(p *Package, sel *ast.SelectStmt) {
	clauses := 0
	assigned := make(map[types.Object]int) // object -> clauses assigning it
	last := make(map[types.Object]int)     // dedup within one clause
	var firstPos token.Pos
	for _, stmt := range sel.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		clauses++
		for _, s := range cc.Body {
			ast.Inspect(s, func(x ast.Node) bool {
				as, ok := x.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, l := range as.Lhs {
					obj := ta.rootObject(p, l)
					if obj == nil {
						continue
					}
					// Only objects declared OUTSIDE the clause can record
					// the winner; clause-local defs die with the clause.
					if p.Info.Defs[ta.identOf(l)] != nil {
						continue
					}
					if last[obj] != clauses {
						last[obj] = clauses
						assigned[obj]++
						if assigned[obj] == 2 && firstPos == token.NoPos {
							firstPos = as.Pos()
						}
					}
				}
				return true
			})
		}
	}
	if clauses < 2 {
		return
	}
	pos := p.Fset.Position(sel.Pos())
	for obj, count := range assigned {
		if count >= 2 {
			ta.setTaint(obj, &witness{pos: pos, desc: "select winner"})
		}
	}
}

func (ta *taintAnalysis) identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// propagateCall pushes tainted arguments into the parameters of every
// module function the call may reach, and a tainted receiver into the
// receiver parameter.
func (ta *taintAnalysis) propagateCall(p *Package, call *ast.CallExpr) {
	callees := ta.cg.callees[call]
	if len(callees) == 0 {
		// Unknown callee with tainted args: a method call may accumulate
		// the taint in its receiver (strings.Builder and friends).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			for _, arg := range call.Args {
				if w := ta.exprTaint(p, arg); w != nil {
					if recv := ta.rootObject(p, sel.X); recv != nil {
						if _, isVar := recv.(*types.Var); isVar {
							ta.setTaint(recv, w)
						}
					}
					break
				}
			}
		}
		return
	}
	for _, callee := range callees {
		sig := nodeSig(callee.pkg, callee)
		if sig == nil {
			continue
		}
		params := sig.Params()
		for i, arg := range call.Args {
			w := ta.exprTaint(p, arg)
			if w == nil {
				continue
			}
			pi := i
			if sig.Variadic() && pi >= params.Len()-1 {
				pi = params.Len() - 1
			}
			if pi >= 0 && pi < params.Len() {
				ta.setTaint(params.At(pi), w)
			}
		}
		if recv := sig.Recv(); recv != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if w := ta.exprTaint(p, sel.X); w != nil {
					ta.setTaint(recv, w)
				}
			}
		}
	}
}

// propagateComposite records tainted elements written into struct fields
// (per-field, with //ube:operational absorption) and container literals.
func (ta *taintAnalysis) propagateComposite(p *Package, cl *ast.CompositeLit) {
	st := structTypeOf(p, cl)
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if st != nil {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if w := ta.exprTaint(p, kv.Value); w != nil {
						ta.setTaint(p.Info.Uses[id], w)
					}
				}
			}
			continue
		}
		if st != nil && i < st.NumFields() {
			if w := ta.exprTaint(p, elt); w != nil {
				ta.setTaint(st.Field(i), w)
			}
		}
	}
}

// callResultTaints computes per-result taint witnesses for a call.
func (ta *taintAnalysis) callResultTaints(p *Package, call *ast.CallExpr, n int) []*witness {
	ws := make([]*witness, n)
	if w := ta.sourceWitness(p, call); w != nil {
		for i := range ws {
			ws[i] = w
		}
		return ws
	}
	callees := ta.cg.callees[call]
	if len(callees) == 0 {
		// Unknown callee: every result inherits any argument taint.
		if w := ta.callArgTaint(p, call); w != nil {
			for i := range ws {
				ws[i] = w
			}
		}
		return ws
	}
	for _, callee := range callees {
		for i, w := range ta.result[callee] {
			if i < n && ws[i] == nil {
				ws[i] = w
			}
		}
	}
	return ws
}

// callArgTaint returns the first tainted argument (or tainted method
// receiver) of a call.
func (ta *taintAnalysis) callArgTaint(p *Package, call *ast.CallExpr) *witness {
	for _, arg := range call.Args {
		if w := ta.exprTaint(p, arg); w != nil {
			return w
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Only method receivers: a package qualifier has no taint.
		if s := p.Info.Selections[sel]; s != nil {
			if w := ta.exprTaint(p, sel.X); w != nil {
				return w
			}
		}
	}
	return nil
}

// exprTaint computes the taint witness of an expression under the current
// state, nil when clean.
func (ta *taintAnalysis) exprTaint(p *Package, e ast.Expr) *witness {
	switch e := e.(type) {
	case *ast.BasicLit, *ast.FuncLit:
		return nil
	case *ast.Ident:
		if obj := p.Info.Uses[e]; obj != nil {
			return ta.taint[obj]
		}
		return nil
	case *ast.SelectorExpr:
		sel := p.Info.Selections[e]
		if sel == nil {
			// Qualified identifier pkg.X.
			if obj := p.Info.Uses[e.Sel]; obj != nil {
				return ta.taint[obj]
			}
			return nil
		}
		if f, ok := sel.Obj().(*types.Var); ok {
			if ta.operational[f] {
				return nil // declared operational: reads are clean
			}
			if w := ta.taint[f]; w != nil {
				return w
			}
		}
		// A field of a tainted struct value, or a method value on a
		// tainted receiver, inherits the base taint.
		return ta.exprTaint(p, e.X)
	case *ast.CallExpr:
		return ta.callTaint(p, e)
	case *ast.ParenExpr:
		return ta.exprTaint(p, e.X)
	case *ast.StarExpr:
		return ta.exprTaint(p, e.X)
	case *ast.UnaryExpr:
		return ta.exprTaint(p, e.X)
	case *ast.BinaryExpr:
		if w := ta.exprTaint(p, e.X); w != nil {
			return w
		}
		return ta.exprTaint(p, e.Y)
	case *ast.IndexExpr:
		return ta.exprTaint(p, e.X)
	case *ast.SliceExpr:
		return ta.exprTaint(p, e.X)
	case *ast.TypeAssertExpr:
		return ta.exprTaint(p, e.X)
	case *ast.CompositeLit:
		st := structTypeOf(p, e)
		for i, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if st != nil {
					if id, ok := kv.Key.(*ast.Ident); ok {
						if f, ok := p.Info.Uses[id].(*types.Var); ok && ta.operational[f] {
							continue // absorbed by the declared field
						}
					}
				} else if w := ta.exprTaint(p, kv.Key); w != nil {
					return w
				}
				if w := ta.exprTaint(p, kv.Value); w != nil {
					return w
				}
				continue
			}
			if st != nil && i < st.NumFields() && ta.operational[st.Field(i)] {
				continue
			}
			if w := ta.exprTaint(p, elt); w != nil {
				return w
			}
		}
		return nil
	}
	return nil
}

// callTaint is exprTaint for calls: sources, module callees' result
// taint, and the conservative unknown-callee rule.
func (ta *taintAnalysis) callTaint(p *Package, call *ast.CallExpr) *witness {
	if w := ta.sourceWitness(p, call); w != nil {
		return w
	}
	// Conversions convert taint along with the value.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return ta.exprTaint(p, call.Args[0])
		}
		return nil
	}
	// Builtins: len/cap/make/new and friends are deterministic of their
	// operand's shape; append and friends carry their operands' taint.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append", "min", "max":
				return ta.callArgTaint(p, call)
			default:
				return nil
			}
		}
	}
	if callees := ta.cg.callees[call]; len(callees) > 0 {
		for _, callee := range callees {
			if w := ta.resultAny(callee); w != nil {
				return w
			}
		}
		return nil
	}
	return ta.callArgTaint(p, call)
}

// sourceWitness recognizes the nondeterminism sources at a call site.
func (ta *taintAnalysis) sourceWitness(p *Package, call *ast.CallExpr) *witness {
	// uintptr(p) over an unsafe.Pointer: pointer identity escaping into
	// arithmetic/formatting.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if at := p.Info.TypeOf(call.Args[0]); at != nil {
				if ab, ok := at.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					return &witness{pos: p.Fset.Position(call.Pos()), desc: "unsafe.Pointer→uintptr"}
				}
			}
		}
		return nil
	}
	obj := calleeObjectOf(p, call)
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // methods (e.g. on an injected seeded *rand.Rand) are sanctioned
	}
	pkgPath, name := obj.Pkg().Path(), obj.Name()
	if _, ok := bannedCalls[[2]string{pkgPath, name}]; ok {
		return &witness{pos: p.Fset.Position(call.Pos()), desc: pkgPath + "." + name}
	}
	if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
		if !randAllowed[name] {
			return &witness{pos: p.Fset.Position(call.Pos()), desc: pkgPath + "." + name}
		}
	}
	// Pointer formatting: a fmt verb %p renders an address.
	if pkgPath == "fmt" {
		for _, arg := range call.Args {
			if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				if strings.Contains(constant.StringVal(tv.Value), "%p") {
					return &witness{pos: p.Fset.Position(call.Pos()), desc: "fmt %p pointer formatting"}
				}
			}
		}
	}
	return nil
}

func calleeObjectOf(p *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	case *ast.Ident:
		return p.Info.Uses[fun]
	}
	return nil
}

// ---- sink checking --------------------------------------------------------

func (ta *taintAnalysis) report(p *Package, pos token.Pos, format string, args ...any) {
	if ta.ann.suppressed(p.Fset, pos, "taintflow", "taint-ok") {
		return
	}
	ta.diags = append(ta.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   "taintflow",
		Message: fmt.Sprintf(format, args...),
	})
}

// checkSinks walks one function body with the converged taint state and
// reports every tainted value reaching a sink.
func (ta *taintAnalysis) checkSinks(n *fnode) {
	p := n.pkg
	ast.Inspect(n.body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			ta.checkSinkCall(p, x)
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					ta.checkSinkFieldWrite(p, x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.CompositeLit:
			st := structTypeOf(p, x)
			for i, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						ta.checkSinkFieldObj(p, p.Info.Uses[id], kv.Value)
					}
					continue
				}
				if st != nil && i < st.NumFields() {
					ta.checkSinkFieldObj(p, st.Field(i), elt)
				}
			}
		}
		return true
	})
}

// checkSinkCall reports tainted arguments reaching sink functions.
func (ta *taintAnalysis) checkSinkCall(p *Package, call *ast.CallExpr) {
	obj, ok := calleeObjectOf(p, call).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	// Declared //ube:taint-sink functions.
	if _, isSink := ta.sinkFuncs[obj]; isSink {
		for _, arg := range call.Args {
			if w := ta.exprTaint(p, arg); w != nil {
				ta.report(p, arg.Pos(), "nondeterministic value (%s) reaches declared sink %s; make the input deterministic or annotate //ube:taint-ok", w, obj.Name())
			}
		}
		return
	}
	pkgPath := obj.Pkg().Path()
	// (*trace.Stats).Add with a deterministic counter.
	if obj.Name() == "Add" && strings.HasSuffix(pkgPath, "internal/trace") && recvTypeName(obj) == "Stats" {
		if len(call.Args) == 2 && !ta.operationalCounterArg(p, obj, call.Args[0]) {
			if w := ta.exprTaint(p, call.Args[1]); w != nil {
				ta.report(p, call.Args[1].Pos(), "nondeterministic value (%s) reaches deterministic trace counter %s; canonical traces compare these counts byte-for-byte — count something deterministic, use an operational counter, or annotate //ube:taint-ok", w, exprString(call.Args[0]))
			}
		}
		return
	}
	// schemaio encoders produce canonical wire payloads.
	if strings.HasSuffix(pkgPath, "internal/schemaio") && strings.HasPrefix(obj.Name(), "Encode") {
		for _, arg := range call.Args {
			if w := ta.exprTaint(p, arg); w != nil {
				ta.report(p, arg.Pos(), "nondeterministic value (%s) reaches schemaio encoder %s; encoded payloads are canonical — strip the value first or annotate //ube:taint-ok", w, obj.Name())
			}
		}
	}
}

// recvTypeName returns the name of a method's receiver type, "" for
// functions.
func recvTypeName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// operationalCounterArg reports whether the counter argument is a known
// operational counter (value at or past OSnapshotBuilds in the callee's
// package) — those are stripped by Canonical, so taint may reach them.
func (ta *taintAnalysis) operationalCounterArg(p *Package, add *types.Func, arg ast.Expr) bool {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false // dynamic counter: assume deterministic (conservative)
	}
	boundary, ok := add.Pkg().Scope().Lookup("OSnapshotBuilds").(*types.Const)
	if !ok {
		return false
	}
	v, vok := constant.Int64Val(tv.Value)
	b, bok := constant.Int64Val(boundary.Val())
	return vok && bok && v >= b
}

// checkSinkFieldWrite reports tainted values assigned into sink fields.
func (ta *taintAnalysis) checkSinkFieldWrite(p *Package, lhs, rhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	if _, isSink := ta.sinkFields[f]; !isSink {
		return
	}
	ta.checkSinkFieldObj(p, f, rhs)
}

// checkSinkFieldObj applies the sink-field rules to one written value:
// no tainted value may land in the field, and an objective field may not
// receive a function whose result is tainted.
func (ta *taintAnalysis) checkSinkFieldObj(p *Package, obj types.Object, rhs ast.Expr) {
	f, ok := obj.(*types.Var)
	if !ok {
		return
	}
	s, isSink := ta.sinkFields[f]
	if !isSink {
		return
	}
	if w := ta.exprTaint(p, rhs); w != nil {
		ta.report(p, rhs.Pos(), "nondeterministic value (%s) is written into %s (%s.%s); solve results must be pure functions of (problem, seed) — drop the value or annotate //ube:taint-ok", w, s.desc, fieldOwner(f), f.Name())
	}
	if s.objective {
		for _, fn := range ta.cg.funcValues(p, rhs) {
			if w := ta.resultAny(fn); w != nil {
				ta.report(p, rhs.Pos(), "objective %s assigned into %s returns a nondeterministic value (%s); objectives must be pure — remove the source or annotate //ube:taint-ok", fn.name, s.desc, w)
			}
		}
	}
}

// fieldOwner renders the declaring struct's package-qualified name for a
// field var, best effort.
func fieldOwner(f *types.Var) string {
	if f.Pkg() != nil {
		return shortPkg(f.Pkg().Path())
	}
	return "?"
}
