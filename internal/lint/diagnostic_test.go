package lint

import (
	"go/token"
	"testing"
)

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "x/y.go", Line: 12, Column: 3},
		Check:   "maprange",
		Message: "map iteration order reaches an exported result",
	}
	want := "x/y.go:12:3: maprange: map iteration order reaches an exported result"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
