package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/expect")

// fixtureScope makes the determinism checks apply to fixture packages
// (their import paths contain "lint/testdata/src").
var fixtureScope = []string{"lint/testdata/src"}

// runFixture lints one fixture package and renders its diagnostics in
// golden form: one "file.go:line:col: check: message" line each, with
// the directory stripped so goldens are machine-independent.
func runFixture(t *testing.T, name string, cfg Config) string {
	t.Helper()
	diags, err := Run([]string{filepath.Join("testdata", "src", name)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	return b.String()
}

// TestFixtureGoldens pins the analyzer's exact output — positions,
// messages, idiom exemptions and annotation suppressions — on known-bad
// fixture packages. Regenerate with `go test ./internal/lint -update`
// after an intentional diagnostic change, and review the diff.
func TestFixtureGoldens(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"maprange", Config{DeterminismPaths: fixtureScope}},
		{"banned", Config{DeterminismPaths: fixtureScope}},
		{"floateq", Config{}},
		{"poolput", Config{}},
		{"deltafallback", Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFixture(t, tc.name, tc.cfg)
			golden := filepath.Join("testdata", "expect", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestDeterminismScopeGates proves the determinism checks only fire
// inside configured paths: the banned fixture is silent when no
// determinism path matches it.
func TestDeterminismScopeGates(t *testing.T) {
	got := runFixture(t, "banned", Config{DeterminismPaths: []string{"ube/internal/search"}})
	if got != "" {
		t.Errorf("determinism checks fired outside their scope:\n%s", got)
	}
}

// TestCheckSubset proves -checks filtering: with only floateq enabled,
// the poolput fixture is silent and the floateq fixture still reports.
func TestCheckSubset(t *testing.T) {
	if got := runFixture(t, "poolput", Config{Checks: []string{"floateq"}}); got != "" {
		t.Errorf("poolput diagnostics leaked through a floateq-only run:\n%s", got)
	}
	if got := runFixture(t, "floateq", Config{Checks: []string{"floateq"}}); got == "" {
		t.Error("floateq-only run reported nothing on the floateq fixture")
	}
}

// TestCleanTree is the self-application gate: the analyzer must exit
// clean on the repository it ships in. Kept out of -short because it
// type-checks the whole module.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint run")
	}
	diags, err := Run([]string{"../../..." /* module root from internal/lint */}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDefaultScopeCoversService pins the session service and its load
// generator inside the default determinism scope: an unannotated clock
// read, map walk or global-rand draw in ube/internal/server or
// ube/cmd/ube-load is a diagnostic, same as in the solver itself.
func TestDefaultScopeCoversService(t *testing.T) {
	var cfg Config
	for _, path := range []string{"ube/internal/server", "ube/cmd/ube-load", "ube/internal/faultinject", "ube/internal/search", "ube/internal/strsim"} {
		if !cfg.determinismScoped(path) {
			t.Errorf("%s is outside the default determinism scope", path)
		}
	}
	// ube-serve's main only wires flags, signals and listeners; it stays
	// out of scope by design.
	if cfg.determinismScoped("ube/cmd/ube-serve") {
		t.Error("ube/cmd/ube-serve unexpectedly in the determinism scope")
	}
}

// TestCheckNamesDocumented keeps CheckNames and CheckDocs in lockstep.
func TestCheckNamesDocumented(t *testing.T) {
	if len(CheckNames) != len(CheckDocs) {
		t.Fatalf("%d check names, %d docs", len(CheckNames), len(CheckDocs))
	}
	for _, name := range CheckNames {
		if CheckDocs[name] == "" {
			t.Errorf("check %s has no doc", name)
		}
	}
}
