package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/expect")

// fixtureScope makes the determinism checks apply to fixture packages
// (their import paths contain "lint/testdata/src").
var fixtureScope = []string{"lint/testdata/src"}

// runFixture lints one fixture package and renders its diagnostics in
// golden form: one "file.go:line:col: check: message" line each, with
// the directory stripped so goldens are machine-independent.
func runFixture(t *testing.T, name string, cfg Config) string {
	t.Helper()
	diags, err := Run([]string{filepath.Join("testdata", "src", name)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	return b.String()
}

// TestFixtureGoldens pins the analyzer's exact output — positions,
// messages, idiom exemptions and annotation suppressions — on known-bad
// fixture packages. Regenerate with `go test ./internal/lint -update`
// after an intentional diagnostic change, and review the diff.
func TestFixtureGoldens(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"maprange", Config{DeterminismPaths: fixtureScope}},
		{"banned", Config{DeterminismPaths: fixtureScope}},
		{"floateq", Config{}},
		{"poolput", Config{}},
		{"deltafallback", Config{}},
		{"taintflow", Config{DeterminismPaths: fixtureScope}},
		{"lockpair", Config{}},
		{"lockblock", Config{}},
		{"atomicmix", Config{}},
		{"stalesuppress", Config{DeterminismPaths: fixtureScope}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFixture(t, tc.name, tc.cfg)
			golden := filepath.Join("testdata", "expect", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestDeterminismScopeGates proves the determinism checks only fire
// inside configured paths: the banned fixture is silent when no
// determinism path matches it.
func TestDeterminismScopeGates(t *testing.T) {
	got := runFixture(t, "banned", Config{DeterminismPaths: []string{"ube/internal/search"}})
	if got != "" {
		t.Errorf("determinism checks fired outside their scope:\n%s", got)
	}
}

// TestCheckSubset proves -checks filtering: with only floateq enabled,
// the poolput fixture is silent and the floateq fixture still reports.
func TestCheckSubset(t *testing.T) {
	if got := runFixture(t, "poolput", Config{Checks: []string{"floateq"}}); got != "" {
		t.Errorf("poolput diagnostics leaked through a floateq-only run:\n%s", got)
	}
	if got := runFixture(t, "floateq", Config{Checks: []string{"floateq"}}); got == "" {
		t.Error("floateq-only run reported nothing on the floateq fixture")
	}
}

// TestExcludeChecks proves -exclude-checks filtering: with taintflow
// excluded, the taintflow fixture is silent (its other annotations cover
// the site checks, and stalesuppress stands down because staleness
// accounting needs every check to have run).
func TestExcludeChecks(t *testing.T) {
	cfg := Config{DeterminismPaths: fixtureScope, ExcludeChecks: []string{"taintflow"}}
	if got := runFixture(t, "taintflow", cfg); got != "" {
		t.Errorf("diagnostics leaked through an exclude-checks run:\n%s", got)
	}
	if got := runFixture(t, "lockblock", Config{ExcludeChecks: []string{"lockblock"}}); got != "" {
		t.Errorf("lockblock diagnostics survived their exclusion:\n%s", got)
	}
}

// TestWriteJSON pins the machine-readable output shape, including the
// per-check suppression rendering and the never-null empty array.
func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "a/b.go", Line: 3, Column: 7}, Check: "taintflow", Message: "tainted"},
		{Pos: token.Position{Filename: "a/b.go", Line: 9, Column: 2}, Check: "deltafallback", Message: "no fallback"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("%d objects, want 2", len(got))
	}
	first := got[0]
	for key, want := range map[string]any{
		"file": "a/b.go", "line": float64(3), "col": float64(7),
		"check": "taintflow", "message": "tainted", "suppression": "//ube:taint-ok",
	} {
		if first[key] != want {
			t.Errorf("first[%q] = %v, want %v", key, first[key], want)
		}
	}
	if got[1]["suppression"] != "//ube:lint-ignore deltafallback" {
		t.Errorf("deltafallback suppression = %v", got[1]["suppression"])
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty diagnostics rendered %q, want []", s)
	}
}

// TestCleanTree is the self-application gate: the analyzer must exit
// clean on the repository it ships in. Kept out of -short because it
// type-checks the whole module.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint run")
	}
	diags, err := Run([]string{"../../..." /* module root from internal/lint */}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDefaultScopeCoversService pins the session service and its load
// generator inside the default determinism scope: an unannotated clock
// read, map walk or global-rand draw in ube/internal/server or
// ube/cmd/ube-load is a diagnostic, same as in the solver itself.
func TestDefaultScopeCoversService(t *testing.T) {
	var cfg Config
	for _, path := range []string{"ube/internal/server", "ube/cmd/ube-load", "ube/internal/faultinject",
		"ube/internal/search", "ube/internal/strsim", "ube/internal/wal", "ube/internal/auditlog"} {
		if !cfg.determinismScoped(path) {
			t.Errorf("%s is outside the default determinism scope", path)
		}
	}
	// ube-serve's main only wires flags, signals and listeners; it stays
	// out of scope by design.
	if cfg.determinismScoped("ube/cmd/ube-serve") {
		t.Error("ube/cmd/ube-serve unexpectedly in the determinism scope")
	}
}

// TestCheckNamesDocumented keeps CheckNames and CheckDocs in lockstep.
func TestCheckNamesDocumented(t *testing.T) {
	if len(CheckNames) != len(CheckDocs) {
		t.Fatalf("%d check names, %d docs", len(CheckNames), len(CheckDocs))
	}
	for _, name := range CheckNames {
		if CheckDocs[name] == "" {
			t.Errorf("check %s has no doc", name)
		}
	}
}
