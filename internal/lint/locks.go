package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The concurrency-discipline checks: lockpair, lockblock and atomicmix.
//
// lockpair and lockblock run per function body (function literals are
// analyzed independently: a goroutine body pairs its own locks). The
// walker abstractly interprets the body's block structure, carrying the
// set of held sync.Mutex/RWMutex locks, keyed by the receiver expression's
// rendered form (s.mu and s.mu pair; s.mu and t.mu do not). Branches fork
// the state and merge on the intersection of non-terminated paths; a
// deferred Unlock satisfies pairing for every subsequent exit while the
// lock still counts as held for lockblock. The analysis is deliberately
// intraprocedural and syntactic about lock identity: a helper that
// unlocks its caller's mutex is invisible (the unmatched Unlock is
// ignored, never reported).
//
// atomicmix runs per package: any variable or struct field whose address
// is passed to a sync/atomic function (atomic.AddInt64(&x, ...)) must not
// also be read or written plainly in the same package — the plain access
// races with the atomic ones. Typed atomics (atomic.Int64 fields) cannot
// mix by construction and are out of scope.

// heldLock is one mutex the current path holds. Clone shares the
// pointers, so marking a lock reported (or deferred-released) in one
// branch is visible to its siblings — each lock yields one diagnostic.
type heldLock struct {
	key      string // rendered receiver expression, e.g. "s.mu"
	kind     string // "Lock" or "RLock"
	pos      token.Pos
	deferred bool // a deferred Unlock/RUnlock is registered
	reported bool
}

// lockState is the set of locks held on the current path, in acquisition
// order.
type lockState struct {
	held []*heldLock
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make([]*heldLock, len(s.held))}
	copy(c.held, s.held)
	return c
}

func (s *lockState) contains(h *heldLock) bool {
	for _, x := range s.held {
		if x == h {
			return true
		}
	}
	return false
}

// intersect keeps only the locks held on every merged path.
func (s *lockState) intersect(others ...*lockState) {
	var kept []*heldLock
next:
	for _, h := range s.held {
		for _, o := range others {
			if !o.contains(h) {
				continue next
			}
		}
		kept = append(kept, h)
	}
	s.held = kept
}

// checkLocks runs the lockpair and lockblock analyses over one function
// or function-literal body.
func (c *checker) checkLocks(fnName string, body *ast.BlockStmt) {
	if !c.cfg.enabled("lockpair") && !c.cfg.enabled("lockblock") {
		return
	}
	st := &lockState{}
	if !c.walkLockBlock(fnName, st, body) {
		// Fall-through off the end of the body is an implicit return.
		c.reportLeaks(fnName, st, body.Rbrace, "falls off the end")
	}
}

// reportLeaks emits one lockpair diagnostic per leaked lock, at the Lock
// site (where the suppression belongs), describing the escaping path.
func (c *checker) reportLeaks(fnName string, st *lockState, at token.Pos, how string) {
	for _, h := range st.held {
		if h.deferred || h.reported {
			continue
		}
		h.reported = true
		c.report(h.pos, "lockpair", "lock-ok",
			"%s.%s() is still held when %s %s at line %d; unlock on every path or defer the unlock",
			h.key, h.kind, fnName, how, c.pkg.Fset.Position(at).Line)
	}
}

// walkLockBlock walks a block's statements in order; the return value
// reports whether every path through the block terminates (return, panic,
// branch) before reaching its end.
func (c *checker) walkLockBlock(fnName string, st *lockState, block *ast.BlockStmt) bool {
	for _, stmt := range block.List {
		if c.walkLockStmt(fnName, st, stmt) {
			return true
		}
	}
	return false
}

// walkLockStmt interprets one statement, returning true when the path
// terminates here.
func (c *checker) walkLockStmt(fnName string, st *lockState, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		c.scanBlocking(st, s)
		c.reportLeaks(fnName, st, s.Pos(), "returns")
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the block; where they land is beyond
		// this walker, so the path just ends without a pairing verdict.
		return true

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, kind, acquire, isMu := c.mutexOp(call); isMu {
				c.applyMutexOp(st, key, kind, acquire, call.Pos())
				return false
			}
			if c.isTerminalCall(call) {
				return true
			}
		}
		c.scanBlocking(st, s)
		return false

	case *ast.DeferStmt:
		if key, kind, acquire, isMu := c.mutexOp(s.Call); isMu && !acquire {
			for i := len(st.held) - 1; i >= 0; i-- {
				if st.held[i].key == key && st.held[i].kind == kind {
					st.held[i].deferred = true
					break
				}
			}
		}
		return false

	case *ast.GoStmt:
		return false // the spawn itself never blocks; the body is its own analysis

	case *ast.LabeledStmt:
		return c.walkLockStmt(fnName, st, s.Stmt)

	case *ast.BlockStmt:
		return c.walkLockBlock(fnName, st, s)

	case *ast.IfStmt:
		if s.Init != nil {
			c.walkLockStmt(fnName, st, s.Init)
		}
		c.scanBlocking(st, s.Cond)
		thenSt := st.clone()
		thenTerm := c.walkLockBlock(fnName, thenSt, s.Body)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkLockStmt(fnName, elseSt, s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			st.held = elseSt.held
		case elseTerm:
			st.held = thenSt.held
		default:
			thenSt.intersect(elseSt)
			st.held = thenSt.held
		}
		return false

	case *ast.ForStmt:
		if s.Init != nil {
			c.walkLockStmt(fnName, st, s.Init)
		}
		if s.Cond != nil {
			c.scanBlocking(st, s.Cond)
		}
		c.walkLoopBody(fnName, st, s.Body)
		return false

	case *ast.RangeStmt:
		if t := c.pkg.Info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.reportBlocking(st, s.Pos(), "range over channel "+exprString(s.X))
			}
		}
		c.scanBlocking(st, s.X)
		c.walkLoopBody(fnName, st, s.Body)
		return false

	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkLockStmt(fnName, st, s.Init)
		}
		if s.Tag != nil {
			c.scanBlocking(st, s.Tag)
		}
		return c.walkClauses(fnName, st, s.Body, hasDefaultCase(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkLockStmt(fnName, st, s.Init)
		}
		return c.walkClauses(fnName, st, s.Body, hasDefaultCase(s.Body))

	case *ast.SelectStmt:
		if !hasDefaultComm(s.Body) {
			c.reportBlocking(st, s.Pos(), "select with no default")
		}
		return c.walkClauses(fnName, st, s.Body, true)

	default:
		c.scanBlocking(st, stmt)
		return false
	}
}

// walkLoopBody walks a loop body on a forked state (the loop may run zero
// times) and reports a lock acquired inside the body that is still held
// when the body ends — the next iteration's Lock would self-deadlock.
func (c *checker) walkLoopBody(fnName string, st *lockState, body *ast.BlockStmt) {
	bodySt := st.clone()
	if c.walkLockBlock(fnName, bodySt, body) {
		return
	}
	for _, h := range bodySt.held {
		if h.deferred || h.reported || st.contains(h) {
			continue
		}
		h.reported = true
		c.report(h.pos, "lockpair", "lock-ok",
			"%s.%s() acquired in this loop body is still held when the body ends at line %d; the next iteration would deadlock — unlock before looping",
			h.key, h.kind, c.pkg.Fset.Position(body.Rbrace).Line)
	}
}

// walkClauses forks the state per case/comm clause and merges the
// intersection of the non-terminated ones; when the construct can be
// skipped entirely (a switch with no default), the entry state is one of
// the merged paths. Returns true when every path terminates.
func (c *checker) walkClauses(fnName string, st *lockState, body *ast.BlockStmt, exhaustive bool) bool {
	var live []*lockState
	clauses := 0
	for _, stmt := range body.List {
		var list []ast.Stmt
		switch cl := stmt.(type) {
		case *ast.CaseClause:
			list = cl.Body
		case *ast.CommClause:
			list = cl.Body
		default:
			continue
		}
		clauses++
		clSt := st.clone()
		term := false
		for _, s := range list {
			if c.walkLockStmt(fnName, clSt, s) {
				term = true
				break
			}
		}
		if !term {
			live = append(live, clSt)
		}
	}
	if !exhaustive {
		live = append(live, st.clone())
	}
	if clauses > 0 && len(live) == 0 {
		return true
	}
	if len(live) > 0 {
		first := live[0]
		first.intersect(live[1:]...)
		st.held = first.held
	}
	return false
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if cl, ok := stmt.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}

func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if cl, ok := stmt.(*ast.CommClause); ok && cl.Comm == nil {
			return true
		}
	}
	return false
}

// mutexOp recognizes Lock/Unlock/RLock/RUnlock calls on sync mutexes
// (including embedded ones and sync.Locker values), returning the lock
// key, the pairing kind and whether the op acquires.
func (c *checker) mutexOp(call *ast.CallExpr) (key, kind string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	obj, isFn := c.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false, false
	}
	key = exprString(sel.X)
	switch obj.Name() {
	case "Lock":
		return key, "Lock", true, true
	case "Unlock":
		return key, "Lock", false, true
	case "RLock":
		return key, "RLock", true, true
	case "RUnlock":
		return key, "RLock", false, true
	}
	return "", "", false, false
}

// applyMutexOp pushes an acquire and pops the most recent matching hold
// on a release. An unmatched release (a helper unlocking its caller's
// mutex) is ignored, never reported.
func (c *checker) applyMutexOp(st *lockState, key, kind string, acquire bool, pos token.Pos) {
	if acquire {
		st.held = append(st.held, &heldLock{key: key, kind: kind, pos: pos})
		return
	}
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].key == key && st.held[i].kind == kind {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
}

// isTerminalCall recognizes calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit.
func (c *checker) isTerminalCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return id.Name == "panic"
		}
	}
	obj := c.calleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "os":
		return obj.Name() == "Exit"
	case "log":
		return strings.HasPrefix(obj.Name(), "Fatal")
	case "runtime":
		return obj.Name() == "Goexit"
	}
	return false
}

// scanBlocking inspects an expression or simple statement for blocking
// operations — channel receives, channel sends, blocking calls — and
// reports each one performed while a lock is held. Function literals are
// skipped: their bodies run elsewhere.
func (c *checker) scanBlocking(st *lockState, n ast.Node) {
	if len(st.held) == 0 || n == nil || !c.cfg.enabled("lockblock") {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.reportBlocking(st, x.Pos(), "channel receive from "+exprString(x.X))
			}
		case *ast.SendStmt:
			c.reportBlocking(st, x.Pos(), "channel send to "+exprString(x.Chan))
		case *ast.CallExpr:
			if desc, ok := c.blockingCall(x); ok {
				c.reportBlocking(st, x.Pos(), desc)
			}
		}
		return true
	})
}

// blockingCall recognizes calls that can block the goroutine: time.Sleep,
// any zero-argument Wait method (sync.WaitGroup, sync.Cond, os/exec.Cmd),
// and fault-injection points (faultinject Injector.Fire runs arbitrary
// injected behavior, including delays, by design).
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	obj, ok := c.calleeObject(call).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return "", false
	}
	if sig.Recv() == nil {
		if obj.Pkg().Path() == "time" && obj.Name() == "Sleep" {
			return "time.Sleep", true
		}
		return "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	if obj.Name() == "Wait" && len(call.Args) == 0 {
		return exprString(sel.X) + ".Wait()", true
	}
	if obj.Name() == "Fire" && recvTypeName(obj) == "Injector" && strings.Contains(obj.Pkg().Path(), "faultinject") {
		return "fault-injection point " + exprString(sel.X) + ".Fire", true
	}
	return "", false
}

// reportBlocking emits one lockblock diagnostic against the most recently
// acquired held lock.
func (c *checker) reportBlocking(st *lockState, pos token.Pos, what string) {
	if len(st.held) == 0 || !c.cfg.enabled("lockblock") {
		return
	}
	h := st.held[len(st.held)-1]
	c.report(pos, "lockblock", "lock-held-ok",
		"%s while %s.%s() is held (locked at line %d); a blocked goroutine holding this lock stalls every contender — release first or annotate //ube:lock-held-ok",
		what, h.key, h.kind, c.pkg.Fset.Position(h.pos).Line)
}

// ---- atomicmix ------------------------------------------------------------

// checkAtomicMix runs once per package: every variable or field whose
// address ever reaches a sync/atomic function must be accessed through
// sync/atomic everywhere in the package.
func (c *checker) checkAtomicMix() {
	if !c.cfg.enabled("atomicmix") {
		return
	}
	// Pass 1: objects used atomically, with the first atomic site, and
	// the &x argument nodes to skip in pass 2.
	atomicObjs := make(map[types.Object]token.Pos)
	atomicArgs := make(map[ast.Expr]bool)
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := c.calleeObject(call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed atomics (atomic.Int64 methods) cannot mix
			}
			if len(call.Args) == 0 {
				return true
			}
			target, addr := c.addrTarget(call.Args[0])
			if target == nil {
				return true
			}
			atomicArgs[addr] = true
			if old, seen := atomicObjs[target]; !seen || call.Pos() < old {
				atomicObjs[target] = call.Pos()
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	// Pass 2: plain accesses to those objects anywhere else in the package.
	for _, f := range c.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && atomicArgs[e] {
				return false // the sanctioned &x inside an atomic call
			}
			var obj types.Object
			var pos token.Pos
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if o, ok := c.pkg.Info.Uses[x.Sel].(*types.Var); ok && atomicObjs[o] != token.NoPos {
					obj, pos = o, x.Pos()
				}
			case *ast.Ident:
				if o, ok := c.pkg.Info.Uses[x].(*types.Var); ok && atomicObjs[o] != token.NoPos {
					obj, pos = o, x.Pos()
				}
			}
			if obj != nil {
				c.report(pos, "atomicmix", "atomic-ok",
					"plain access of %s, which is accessed via sync/atomic at line %d; mixing plain and atomic access races — use atomic loads/stores everywhere or annotate //ube:atomic-ok",
					obj.Name(), c.pkg.Fset.Position(atomicObjs[obj]).Line)
				if _, isSel := n.(*ast.SelectorExpr); isSel {
					return false // don't re-resolve the selector's parts
				}
			}
			return true
		})
	}
}

// addrTarget resolves an atomic call's pointer argument of the form &x or
// &s.f to the addressed object, returning the argument expression so the
// plain-access pass can skip it.
func (c *checker) addrTarget(arg ast.Expr) (types.Object, ast.Expr) {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.Ident:
		if obj, ok := c.pkg.Info.Uses[x].(*types.Var); ok {
			return obj, u
		}
	case *ast.SelectorExpr:
		if obj, ok := c.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return obj, u
		}
	}
	return nil, nil
}
