package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis. Only files that build under the default build context are
// included (so `//go:build ubedebug` files are skipped, and _test.go files
// never load — the float-discipline exemption for tests falls out of the
// loader, not the checks).
type Package struct {
	// Path is the package's import path within the module (or the raw
	// directory for packages outside any module).
	Path string
	// Dir is the absolute directory holding the package.
	Dir string
	// Files are the parsed non-test files, in file-name order.
	Files []*ast.File
	// Fset positions every node and comment of Files.
	Fset *token.FileSet
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
	// Types is the checked package.
	Types *types.Package
}

// loader resolves patterns to directories, parses and type-checks each
// package once, and serves module-internal imports from its own cache so a
// module-wide run checks every package exactly once. Imports it does not
// own (the standard library) are delegated to the stdlib source importer,
// which type-checks them from GOROOT source — no export data, no
// golang.org/x/tools.
type loader struct {
	fset    *token.FileSet
	ctxt    build.Context
	modRoot string
	modPath string
	std     types.ImporterFrom
	cache   map[string]*Package // by import path; nil entry = in progress
	hardErr error
}

func newLoader(buildTags []string) (*loader, error) {
	ctxt := build.Default
	ctxt.BuildTags = append(append([]string(nil), ctxt.BuildTags...), buildTags...)
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &loader{
		fset:  fset,
		ctxt:  ctxt,
		std:   src,
		cache: make(map[string]*Package),
	}, nil
}

// findModule locates the enclosing go.mod starting from dir and records
// the module root and path.
func (l *loader) findModule(dir string) error {
	d, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					l.modRoot = d
					l.modPath = strings.TrimSpace(rest)
					return nil
				}
			}
			return fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-internal import path back to its directory, or
// reports false for paths the loader does not own.
func (l *loader) dirFor(path string) (string, bool) {
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// expand resolves one pattern to package directories. Patterns are
// directories, optionally suffixed with /... for a recursive walk;
// directories named testdata, hidden directories and _-prefixed
// directories are skipped during walks, mirroring the go tool.
func (l *loader) expand(pattern string) ([]string, error) {
	recursive := false
	if pattern == "..." || pattern == "./..." {
		pattern, recursive = ".", true
	} else if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		pattern, recursive = rest, true
	}
	root, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks every package matched by the patterns.
func (l *loader) load(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if l.modRoot == "" {
		seed := strings.TrimSuffix(strings.TrimSuffix(patterns[0], "..."), "/")
		if seed == "" {
			seed = "."
		}
		if err := l.findModule(seed); err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		dirs, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			p, err := l.loadDir(dir)
			if err != nil {
				if _, nogo := err.(*build.NoGoError); nogo {
					continue
				}
				return nil, err
			}
			if p != nil && !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	return pkgs, nil
}

// loadDir parses and type-checks the package in one directory, memoized by
// import path.
func (l *loader) loadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle guard

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		delete(l.cache, path)
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.cache, path)
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // keep the first hard error only
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		delete(l.cache, path)
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Fset: l.fset, Info: info, Types: tpkg}
	l.cache[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal imports are
// checked by the loader itself (once), everything else goes to the stdlib
// source importer.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
