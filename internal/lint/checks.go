package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFile runs every node-level check over one file and the
// function-level checks over each declared function. Function literals
// get their own lock-discipline analysis: a goroutine body's locks are
// paired within the body, not against its enclosing function.
func (c *checker) checkFile(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			c.checkMapRange(n)
		case *ast.CallExpr:
			c.checkBannedCall(n)
		case *ast.BinaryExpr:
			c.checkFloatEq(n)
		case *ast.SwitchStmt:
			c.checkFloatSwitch(n)
		case *ast.FuncDecl:
			if n.Body != nil {
				c.checkPoolPut(n)
				c.checkDeltaFallback(n)
				c.checkLocks(n.Name.Name, n.Body)
			}
		case *ast.FuncLit:
			c.checkLocks("func literal", n.Body)
		}
		return true
	})
}

// ---- maprange -------------------------------------------------------------

// checkMapRange flags `for range` over a map in determinism-scoped
// packages: Go randomizes map iteration order per run, so any solver state
// or float accumulation touched in such a loop varies between solves. The
// one recognized safe shape is the sort-the-keys idiom — a body that only
// collects keys into a slice (which the surrounding code then sorts);
// anything else needs sorted keys or a //ube:nondeterministic-ok
// annotation arguing order-independence.
func (c *checker) checkMapRange(rs *ast.RangeStmt) {
	if !c.determinism {
		return
	}
	t := c.pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if keysCollectIdiom(rs) {
		return
	}
	c.report(rs.Pos(), "maprange", "nondeterministic-ok",
		"range over map %s: iteration order is nondeterministic; sort the keys first or annotate //ube:nondeterministic-ok with why order cannot matter", exprString(rs.X))
}

// keysCollectIdiom recognizes
//
//	for k := range m { keys = append(keys, k) }
//
// whose only effect is gathering the keys for a subsequent sort.
func keysCollectIdiom(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || src.Name != dst.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// ---- wallclock / globalrand / goroutineid ---------------------------------

// bannedCall is one package-level function whose call makes a solve depend
// on ambient state: the wall clock, the process-global RNG, or the
// goroutine identity.
type bannedCall struct {
	pkg, name, check, hint string
}

var bannedCalls = map[[2]string]bannedCall{
	{"time", "Now"}:             {check: "wallclock", hint: "solve results must not read the clock; inject timings from outside the solver"},
	{"time", "Since"}:           {check: "wallclock", hint: "solve results must not read the clock; inject timings from outside the solver"},
	{"runtime", "Stack"}:        {check: "goroutineid", hint: "goroutine identity must not influence evaluation"},
	{"runtime", "NumGoroutine"}: {check: "goroutineid", hint: "goroutine identity must not influence evaluation"},
	{"runtime", "NumCPU"}:       {check: "goroutineid", hint: "machine shape must not influence evaluation; take worker counts from the Problem"},
	{"runtime", "GOMAXPROCS"}:   {check: "goroutineid", hint: "machine shape must not influence evaluation; take worker counts from the Problem"},
}

// randAllowed are the math/rand package-level functions that construct
// explicitly seeded state instead of touching the global source.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// checkBannedCall flags wall-clock reads, global-RNG draws and
// goroutine-identity tricks in determinism-scoped packages.
func (c *checker) checkBannedCall(call *ast.CallExpr) {
	if !c.determinism {
		return
	}
	obj := c.calleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on an injected *rand.Rand) are the sanctioned path
	}
	pkgPath, name := obj.Pkg().Path(), obj.Name()
	if b, ok := bannedCalls[[2]string{pkgPath, name}]; ok {
		c.report(call.Pos(), b.check, "nondeterministic-ok", "call of %s.%s: %s", pkgPath, name, b.hint)
		return
	}
	if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
		if !randAllowed[name] {
			c.report(call.Pos(), "globalrand", "nondeterministic-ok",
				"call of %s.%s uses the process-global RNG; draw from an injected seeded *rand.Rand instead", pkgPath, name)
		}
	}
}

func (c *checker) calleeObject(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return c.pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		return c.pkg.Info.Uses[fun]
	}
	return nil
}

// ---- floateq --------------------------------------------------------------

// checkFloatEq flags == and != between floating-point operands. The delta
// and full evaluation pipelines agree only up to reassociation error, so
// exact float equality is almost always a latent divergence; comparisons
// belong in the floats epsilon helpers. Sites where exactness is the point
// (zero-weight skips that must stay in lockstep across pipelines, range
// degeneracy sentinels) carry a //ube:float-exact annotation saying so.
// _test.go files are exempt by construction: the loader never parses them.
func (c *checker) checkFloatEq(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !c.isFloat(be.X) && !c.isFloat(be.Y) {
		return
	}
	c.report(be.Pos(), "floateq", "float-exact",
		"%s on float operands: use the floats epsilon helpers, or annotate //ube:float-exact with why this comparison must be exact", be.Op)
}

// checkFloatSwitch flags `switch x { case v: }` with a float-typed tag:
// each case clause is an implicit ==, with exactly the reassociation
// hazards of a spelled-out comparison, but no BinaryExpr for checkFloatEq
// to see. Each case expression is reported separately so a //ube:float-exact
// can bless one sentinel arm without blessing the whole switch.
func (c *checker) checkFloatSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil || !c.isFloat(sw.Tag) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.report(e.Pos(), "floateq", "float-exact",
				"switch case on float tag %s is an implicit ==: use the floats epsilon helpers in an if/else chain, or annotate //ube:float-exact with why this comparison must be exact", exprString(sw.Tag))
		}
	}
}

func (c *checker) isFloat(e ast.Expr) bool {
	t := c.pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ---- poolput --------------------------------------------------------------

type poolGet struct {
	name string // bound variable, "" when the result is used unbound
	pos  token.Pos
}

type poolPut struct {
	arg      string // put argument identifier, "" when not a plain ident
	pos      token.Pos
	deferred bool
}

// checkPoolPut enforces sync.Pool hygiene per function: a value obtained
// from Get must reach a Put on every return path of the same function — a
// deferred Put, or a direct Put with no return statement between the Get
// and the Put — or be an explicitly annotated escape (//ube:pool-escape)
// when ownership is handed off. Leaked scratch defeats the pool; worse, a
// value Put twice or retained after Put is shared mutable state across
// goroutines.
func (c *checker) checkPoolPut(fd *ast.FuncDecl) {
	var gets []poolGet
	var puts []poolPut
	var returns []token.Pos
	getCalls := make(map[*ast.CallExpr]bool)

	// Pass 1: Get results bound by assignment (v := pool.Get().(*T)).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !c.isPoolCall(call, "Get") {
			return true
		}
		getCalls[call] = true
		name := ""
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			name = id.Name
		}
		gets = append(gets, poolGet{name: name, pos: as.Pos()})
		return true
	})

	// Pass 2: unbound Gets, all Puts (with defer tracking), all returns.
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.ReturnStmt:
				returns = append(returns, m.Pos())
			case *ast.CallExpr:
				if c.isPoolCall(m, "Get") && !getCalls[m] {
					gets = append(gets, poolGet{pos: m.Pos()})
				}
				if c.isPoolCall(m, "Put") {
					p := poolPut{pos: m.Pos(), deferred: deferred}
					if len(m.Args) == 1 {
						if id, ok := ast.Unparen(m.Args[0]).(*ast.Ident); ok {
							p.arg = id.Name
						}
					}
					puts = append(puts, p)
				}
			}
			return true
		})
	}
	walk(fd.Body, false)

	for _, g := range gets {
		var matched []poolPut
		for _, p := range puts {
			if g.name == "" || p.arg == g.name {
				matched = append(matched, p)
			}
		}
		if len(matched) == 0 {
			c.report(g.pos, "poolput", "pool-escape",
				"sync.Pool Get in %s never reaches a Put in this function; Put it on every return path or annotate //ube:pool-escape at the handoff", fd.Name.Name)
			continue
		}
		safe := false
		var lastPut token.Pos
		for _, p := range matched {
			if p.deferred {
				safe = true
			}
			if p.pos > lastPut {
				lastPut = p.pos
			}
		}
		if safe {
			continue
		}
		for _, r := range returns {
			if r > g.pos && r < lastPut {
				c.report(g.pos, "poolput", "pool-escape",
					"sync.Pool Get in %s may escape through the return at line %d before reaching its Put; defer the Put or annotate //ube:pool-escape", fd.Name.Name, c.pkg.Fset.Position(r).Line)
				break
			}
		}
	}
}

// isPoolCall reports whether call invokes the named method on a sync.Pool
// (or *sync.Pool) receiver.
func (c *checker) isPoolCall(call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := c.pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// ---- deltafallback --------------------------------------------------------

// checkDeltaFallback enforces the delta protocol: DeltaObjective is an
// optional acceleration, never the definition of quality, so any function
// that calls a .DeltaObjective field must guard it with a nil check and
// keep a .Objective fallback in the same function. Without the guard, a
// delta-unaware Problem (every caller that predates PR 1) panics; without
// the fallback, it silently loses its objective.
func (c *checker) checkDeltaFallback(fd *ast.FuncDecl) {
	var calls []token.Pos
	nilChecked := false
	fallback := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "DeltaObjective" {
				calls = append(calls, n.Pos())
			}
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ) && (isDeltaObjectiveSel(n.X) && isNil(n.Y) || isDeltaObjectiveSel(n.Y) && isNil(n.X)) {
				nilChecked = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Objective" {
				fallback = true
			}
		}
		return true
	})
	if len(calls) == 0 || (nilChecked && fallback) {
		return
	}
	for _, pos := range calls {
		switch {
		case !nilChecked:
			c.report(pos, "deltafallback", "",
				"%s calls .DeltaObjective without a nil check; DeltaObjective is optional — guard it and fall back to .Objective", fd.Name.Name)
		default:
			c.report(pos, "deltafallback", "",
				"%s calls .DeltaObjective but never falls back to .Objective; delta-unaware problems would lose their objective", fd.Name.Name)
		}
	}
}

func isDeltaObjectiveSel(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "DeltaObjective"
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
