// Package auditlog hardens the server's plain JSONL audit trail into a
// tamper-evident chain (DESIGN.md §14). Each audit entry is hashed into
// a leaf (SHA-256 over its big-endian sequence number and its exact
// bytes as they appear on the line), every leaf extends a running hash
// chain, and every BatchSize leaves are sealed under a Bitcoin-style
// Merkle root — levels pair up left-to-right, an odd level duplicates
// its last node — so a verifier can recompute everything from the file
// alone and localize the first record that no longer matches. Roots can
// additionally carry an HMAC-SHA256 signature so a reader holding the
// key can anchor the file against wholesale regeneration.
//
// The chain is emitted alongside (never instead of) the plain JSONL
// view: the embedded record bytes ARE the JSONL entries, so existing
// tooling keeps working against either file.
package auditlog

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"ube/internal/schemaio"
)

// DefaultBatchSize seals a Merkle batch every this many records.
const DefaultBatchSize = 16

// Options configures a chain writer.
type Options struct {
	// BatchSize is the records-per-Merkle-batch count (default 16).
	BatchSize int
	// Key, when set, HMAC-SHA256-signs every sealed root.
	Key []byte
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	return o
}

// Writer appends records to a hash chain. Safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	w    io.Writer
	opts Options

	seq         uint64
	chain       [32]byte
	batch       uint64
	pending     [][32]byte
	pendingFrom uint64
}

// NewWriter starts a fresh chain on w: it writes the header line and
// returns a writer positioned at sequence 1.
func NewWriter(w io.Writer, opts Options) (*Writer, error) {
	cw := &Writer{w: w, opts: opts.withDefaults()}
	line := append(schemaio.EncodeAuditChainHeader(), '\n')
	if _, err := w.Write(line); err != nil {
		return nil, fmt.Errorf("auditlog: writing header: %w", err)
	}
	return cw, nil
}

// ResumeWriter adopts the state of an existing chain read from prior
// and continues appending to w (typically the same file, positioned at
// its end). The prior chain is fully verified first: resuming a
// tampered chain would silently launder the tamper.
func ResumeWriter(w io.Writer, prior io.Reader, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	rep := Verify(prior, opts.Key)
	if !rep.OK {
		return nil, fmt.Errorf("auditlog: refusing to resume: %s (line %d)", rep.Reason, rep.Line)
	}
	cw := &Writer{
		w:           w,
		opts:        opts,
		seq:         rep.LastSeq,
		chain:       rep.lastChain,
		batch:       uint64(rep.Batches),
		pending:     rep.pendingLeaves,
		pendingFrom: rep.pendingFrom,
	}
	return cw, nil
}

// OpenFile opens (or creates) the chain file at path for appending,
// resuming existing state when the file is non-empty.
func OpenFile(path string, opts Options) (*Writer, *os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("auditlog: opening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("auditlog: stat %s: %w", path, err)
	}
	var w *Writer
	if info.Size() == 0 {
		w, err = NewWriter(f, opts)
	} else {
		w, err = ResumeWriter(f, f, opts)
		if err == nil {
			_, err = f.Seek(0, io.SeekEnd)
		}
	}
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, f, nil
}

// Append hashes one audit entry into the chain and writes its line,
// sealing a batch when one fills. On error nothing is adopted into the
// in-memory chain state, so the caller's drop accounting matches what a
// verifier will later see.
func (cw *Writer) Append(record []byte) error {
	canonical, err := json.Marshal(json.RawMessage(record))
	if err != nil {
		return fmt.Errorf("auditlog: record is not valid JSON: %w", err)
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	seq := cw.seq + 1
	leaf := leafHash(seq, canonical)
	chain := chainHash(cw.chain, leaf)
	line, err := schemaio.EncodeAuditChainRecord(&schemaio.AuditChainRecordDoc{
		K:      schemaio.AuditChainKindRecord,
		Seq:    seq,
		Record: canonical,
		Leaf:   hex.EncodeToString(leaf[:]),
		Chain:  hex.EncodeToString(chain[:]),
	})
	if err != nil {
		return err
	}
	if _, err := cw.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("auditlog: writing record %d: %w", seq, err)
	}
	cw.seq = seq
	cw.chain = chain
	if len(cw.pending) == 0 {
		cw.pendingFrom = seq
	}
	cw.pending = append(cw.pending, leaf)
	if len(cw.pending) >= cw.opts.BatchSize {
		return cw.sealLocked()
	}
	return nil
}

// Seal closes the current partial batch, if any — called on shutdown so
// a cleanly-stopped chain is sealed end to end. After a crash the
// unsealed tail is still chain-verified, just not yet under a root.
func (cw *Writer) Seal() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if len(cw.pending) == 0 {
		return nil
	}
	return cw.sealLocked()
}

// Stats reports the writer's current position.
func (cw *Writer) Stats() (seq uint64, batches uint64, unsealed int) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.seq, cw.batch, len(cw.pending)
}

func (cw *Writer) sealLocked() error {
	root := merkleRoot(cw.pending)
	doc := &schemaio.AuditChainBatchDoc{
		K:     schemaio.AuditChainKindBatch,
		Batch: cw.batch + 1,
		From:  cw.pendingFrom,
		To:    cw.seq,
		Root:  hex.EncodeToString(root[:]),
	}
	if len(cw.opts.Key) > 0 {
		doc.Sig = hex.EncodeToString(signRoot(cw.opts.Key, root))
	}
	line, err := schemaio.EncodeAuditChainBatch(doc)
	if err != nil {
		return err
	}
	if _, err := cw.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("auditlog: writing batch %d: %w", doc.Batch, err)
	}
	cw.batch++
	cw.pending = cw.pending[:0]
	return nil
}

// leafHash binds a record's bytes to its position:
// SHA-256(seq_be8 ‖ record).
func leafHash(seq uint64, record []byte) [32]byte {
	var pos [8]byte
	binary.BigEndian.PutUint64(pos[:], seq)
	h := sha256.New()
	h.Write(pos[:])
	h.Write(record)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// chainHash extends the running chain: SHA-256(prev ‖ leaf). The
// genesis value is 32 zero bytes.
func chainHash(prev, leaf [32]byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(leaf[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds leaves Bitcoin-style: pair left-to-right, duplicate
// the last node of an odd level, parent = SHA-256(left ‖ right). A
// single leaf is its own root.
func merkleRoot(leaves [][32]byte) [32]byte {
	if len(leaves) == 0 {
		return [32]byte{}
	}
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			next = append(next, pairHash(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

// merkleProof returns the sibling path for leaf idx, innermost first.
func merkleProof(leaves [][32]byte, idx int) []schemaio.AuditProofStepDoc {
	var steps []schemaio.AuditProofStepDoc
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		if len(level)%2 == 1 {
			level = append(level, level[len(level)-1])
		}
		sib := idx ^ 1
		steps = append(steps, schemaio.AuditProofStepDoc{
			Right:   sib > idx,
			Sibling: hex.EncodeToString(level[sib][:]),
		})
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			next = append(next, pairHash(level[i], level[i+1]))
		}
		level = next
		idx /= 2
	}
	return steps
}

func pairHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// signRoot is the optional external anchor: HMAC-SHA256(key, root).
func signRoot(key []byte, root [32]byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(root[:])
	return m.Sum(nil)
}
