package auditlog

// Verification walks a chain file line by line and recomputes
// everything: each parsed line must re-render byte-identically (so any
// mutation at all — content, hashes, even formatting — is visible),
// each leaf and chain hash must match a recompute over the embedded
// record bytes, and each batch root must match a Merkle recompute over
// the leaves it seals. The first line that fails is the localization
// the tamper report carries.

import (
	"bufio"
	"bytes"
	"crypto/hmac"
	"encoding/hex"
	"fmt"
	"io"

	"ube/internal/schemaio"
)

// maxLine bounds one chain line for the scanner; schemaio enforces its
// own limit during decode.
const maxLine = 1<<20 + 64

// Report is the outcome of verifying a chain. When OK is false, Line
// (1-based, header included) and Seq (0 for structural damage before
// any record) localize the first bad record, and Reason says what no
// longer holds.
type Report struct {
	OK     bool
	Line   int
	Seq    uint64
	Reason string

	Records  int
	Batches  int
	Unsealed int
	LastSeq  uint64
	// LastRoot is the most recently sealed root, hex; empty before the
	// first sealed batch.
	LastRoot string
	// Signed reports whether every sealed batch carried a signature.
	Signed bool

	lastChain     [32]byte
	pendingLeaves [][32]byte
	pendingFrom   uint64
}

// Verify recomputes the whole chain read from r. A nil key skips
// signature checks; a non-nil key requires every batch to carry a
// matching signature. Verify never panics on arbitrary input.
func Verify(r io.Reader, key []byte) Report {
	rep := Report{Signed: true}
	bad := func(line int, seq uint64, reason string) Report {
		rep.OK = false
		rep.Line = line
		rep.Seq = seq
		rep.Reason = reason
		return rep
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		doc, err := schemaio.DecodeAuditChainLine(line)
		if err != nil {
			return bad(lineNo, 0, err.Error())
		}
		switch d := doc.(type) {
		case *schemaio.AuditChainHeaderDoc:
			if lineNo != 1 {
				return bad(lineNo, 0, "header line appears after line 1")
			}
			if !bytes.Equal(line, schemaio.EncodeAuditChainHeader()) {
				return bad(lineNo, 0, "header line is not canonical")
			}
			sawHeader = true
		case *schemaio.AuditChainRecordDoc:
			if !sawHeader {
				return bad(lineNo, d.Seq, "record before header")
			}
			render, err := schemaio.EncodeAuditChainRecord(d)
			if err != nil || !bytes.Equal(line, render) {
				return bad(lineNo, d.Seq, fmt.Sprintf("record %d line is not canonical", d.Seq))
			}
			if d.Seq != rep.LastSeq+1 {
				return bad(lineNo, d.Seq, fmt.Sprintf("record seq %d breaks contiguity after %d", d.Seq, rep.LastSeq))
			}
			leaf := leafHash(d.Seq, d.Record)
			if hex.EncodeToString(leaf[:]) != d.Leaf {
				return bad(lineNo, d.Seq, fmt.Sprintf("record %d leaf hash does not match its bytes", d.Seq))
			}
			chain := chainHash(rep.lastChain, leaf)
			if hex.EncodeToString(chain[:]) != d.Chain {
				return bad(lineNo, d.Seq, fmt.Sprintf("record %d chain hash does not extend record %d", d.Seq, d.Seq-1))
			}
			rep.lastChain = chain
			rep.LastSeq = d.Seq
			rep.Records++
			if len(rep.pendingLeaves) == 0 {
				rep.pendingFrom = d.Seq
			}
			rep.pendingLeaves = append(rep.pendingLeaves, leaf)
		case *schemaio.AuditChainBatchDoc:
			if !sawHeader {
				return bad(lineNo, 0, "batch before header")
			}
			render, err := schemaio.EncodeAuditChainBatch(d)
			if err != nil || !bytes.Equal(line, render) {
				return bad(lineNo, 0, fmt.Sprintf("batch %d line is not canonical", d.Batch))
			}
			if d.Batch != uint64(rep.Batches)+1 {
				return bad(lineNo, 0, fmt.Sprintf("batch number %d breaks contiguity after %d", d.Batch, rep.Batches))
			}
			if len(rep.pendingLeaves) == 0 {
				return bad(lineNo, 0, fmt.Sprintf("batch %d seals no records", d.Batch))
			}
			if d.From != rep.pendingFrom || d.To != rep.LastSeq {
				return bad(lineNo, 0, fmt.Sprintf("batch %d claims [%d,%d], records say [%d,%d]",
					d.Batch, d.From, d.To, rep.pendingFrom, rep.LastSeq))
			}
			root := merkleRoot(rep.pendingLeaves)
			if hex.EncodeToString(root[:]) != d.Root {
				return bad(lineNo, rep.pendingFrom, fmt.Sprintf("batch %d merkle root does not match records [%d,%d]", d.Batch, d.From, d.To))
			}
			if d.Sig == "" {
				rep.Signed = false
				if key != nil {
					return bad(lineNo, 0, fmt.Sprintf("batch %d is unsigned but a key was given", d.Batch))
				}
			} else if key != nil {
				sig, _ := hex.DecodeString(d.Sig)
				if !hmac.Equal(sig, signRoot(key, root)) {
					return bad(lineNo, 0, fmt.Sprintf("batch %d signature does not verify", d.Batch))
				}
			}
			rep.Batches++
			rep.LastRoot = d.Root
			rep.pendingLeaves = nil
		}
	}
	if err := sc.Err(); err != nil {
		return bad(lineNo+1, 0, fmt.Sprintf("reading chain: %v", err))
	}
	if !sawHeader {
		return bad(1, 0, "chain has no header line")
	}
	if rep.Batches == 0 {
		rep.Signed = false
	}
	rep.Unsealed = len(rep.pendingLeaves)
	rep.OK = true
	return rep
}

// Prove builds a self-contained inclusion proof for record seq from the
// chain read from r. The record must already be sealed under a batch;
// an unsealed tail record has no root to prove against yet.
func Prove(r io.Reader, seq uint64, key []byte) (*schemaio.AuditProofDoc, error) {
	if seq == 0 {
		return nil, fmt.Errorf("auditlog: record sequence numbers are 1-based")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	var leaves [][32]byte
	var records []schemaio.AuditChainRecordDoc
	var from uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		doc, err := schemaio.DecodeAuditChainLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("auditlog: line %d: %w", lineNo, err)
		}
		switch d := doc.(type) {
		case *schemaio.AuditChainRecordDoc:
			if len(leaves) == 0 {
				from = d.Seq
			}
			leaves = append(leaves, leafHash(d.Seq, d.Record))
			records = append(records, *d)
		case *schemaio.AuditChainBatchDoc:
			if seq >= from && seq <= d.To && len(leaves) > 0 {
				idx := int(seq - from)
				if idx >= len(records) {
					return nil, fmt.Errorf("auditlog: batch %d does not hold record %d", d.Batch, seq)
				}
				proof := &schemaio.AuditProofDoc{
					Doc:    schemaio.AuditProofDocName,
					Seq:    seq,
					Batch:  d.Batch,
					Record: records[idx].Record,
					Steps:  merkleProof(leaves, idx),
					Root:   d.Root,
					Sig:    d.Sig,
				}
				if err := checkProofAgainst(proof, key); err != nil {
					return nil, fmt.Errorf("auditlog: chain is inconsistent at record %d: %w", seq, err)
				}
				return proof, nil
			}
			leaves = nil
			records = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("auditlog: reading chain: %w", err)
	}
	return nil, fmt.Errorf("auditlog: record %d is not sealed under any batch", seq)
}

// CheckProof verifies a self-contained inclusion proof: the record's
// leaf must fold through the steps to the claimed root, and — when a
// key is given — the root's signature must verify.
func CheckProof(d *schemaio.AuditProofDoc, key []byte) error {
	if err := d.Validate(); err != nil {
		return err
	}
	return checkProofAgainst(d, key)
}

func checkProofAgainst(d *schemaio.AuditProofDoc, key []byte) error {
	h := leafHash(d.Seq, d.Record)
	for _, s := range d.Steps {
		sib, err := hex.DecodeString(s.Sibling)
		if err != nil || len(sib) != 32 {
			return fmt.Errorf("auditlog: proof step sibling is not a SHA-256 digest")
		}
		var sibArr [32]byte
		copy(sibArr[:], sib)
		if s.Right {
			h = pairHash(h, sibArr)
		} else {
			h = pairHash(sibArr, h)
		}
	}
	if hex.EncodeToString(h[:]) != d.Root {
		return fmt.Errorf("auditlog: proof does not fold to root %s", d.Root)
	}
	if key != nil {
		if d.Sig == "" {
			return fmt.Errorf("auditlog: proof carries no signature but a key was given")
		}
		sig, _ := hex.DecodeString(d.Sig)
		var root [32]byte
		copy(root[:], h[:])
		if !hmac.Equal(sig, signRoot(key, root)) {
			return fmt.Errorf("auditlog: root signature does not verify")
		}
	}
	return nil
}

// Stats summarizes a chain without fully recomputing it.
type Stats struct {
	Records  int
	Batches  int
	Unsealed int
	LastSeq  uint64
	LastRoot string
	Signed   bool
}

// ReadStats runs a full verification and reports the chain's shape;
// it fails on a tampered chain, because statistics over unverified
// records would be statistics over nothing.
func ReadStats(r io.Reader, key []byte) (Stats, error) {
	rep := Verify(r, key)
	if !rep.OK {
		return Stats{}, fmt.Errorf("auditlog: %s (line %d)", rep.Reason, rep.Line)
	}
	return Stats{
		Records:  rep.Records,
		Batches:  rep.Batches,
		Unsealed: rep.Unsealed,
		LastSeq:  rep.LastSeq,
		LastRoot: rep.LastRoot,
		Signed:   rep.Signed,
	}, nil
}
