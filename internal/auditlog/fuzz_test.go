package auditlog

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzChain is a fixed, complete chain the mutation half of the fuzz
// target works against. Built once; the writer draws no randomness and
// no clock, so this is deterministic.
func fuzzChain() []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Options{BatchSize: 3})
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 7; i++ {
		if err := w.Append([]byte(fmt.Sprintf(`{"ts":%d,"action":"solve.done"}`, i))); err != nil {
			panic(err)
		}
	}
	if err := w.Seal(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzAuditVerify holds the verifier's trust boundary: arbitrary bytes
// must never panic it, and no mutation of a committed chain may ever
// verify — the re-render byte-equality check makes "verifies" imply
// "canonical", so any changed byte must surface as a tamper report.
func FuzzAuditVerify(f *testing.F) {
	chain := fuzzChain()
	f.Add(chain, 0, byte(0))
	f.Add(chain, 17, byte(1))
	f.Add([]byte("{}\n"), 0, byte(0))
	f.Add([]byte{}, 0, byte(0xff))
	f.Add(bytes.Repeat([]byte(`{"k":"r"}`+"\n"), 4), 3, byte(8))

	f.Fuzz(func(t *testing.T, raw []byte, pos int, x byte) {
		// Arbitrary input: must not panic, and must not verify unless
		// it happens to be a self-consistent chain (possible, fine).
		_ = Verify(bytes.NewReader(raw), nil)
		_ = Verify(bytes.NewReader(raw), []byte("k"))

		// Single-byte mutation of the known-good chain: must not verify.
		if x == 0 || len(chain) == 0 {
			return
		}
		if pos < 0 {
			pos = -pos
		}
		mut := append([]byte(nil), chain...)
		mut[pos%len(mut)] ^= x
		if rep := Verify(bytes.NewReader(mut), nil); rep.OK {
			t.Fatalf("mutated chain verified: byte %d xor %#x", pos%len(chain), x)
		}
	})
}
