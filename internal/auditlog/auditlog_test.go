package auditlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ube/internal/schemaio"
)

// writeChain builds a chain of n records in memory.
func writeChain(t *testing.T, n int, opts Options, seal bool) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 1; i <= n; i++ {
		rec := fmt.Sprintf(`{"ts":%d,"session":"s%d","action":"solve.done"}`, 1700000000+i, i%3)
		if err := w.Append([]byte(rec)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if seal {
		if err := w.Seal(); err != nil {
			t.Fatalf("Seal: %v", err)
		}
	}
	return &buf
}

func TestChainVerifyRoundTrip(t *testing.T) {
	buf := writeChain(t, 10, Options{BatchSize: 4}, true)
	rep := Verify(bytes.NewReader(buf.Bytes()), nil)
	if !rep.OK {
		t.Fatalf("verify failed: %s (line %d)", rep.Reason, rep.Line)
	}
	if rep.Records != 10 || rep.Batches != 3 || rep.Unsealed != 0 || rep.LastSeq != 10 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Signed {
		t.Fatal("unsigned chain reported signed")
	}
}

func TestChainUnsealedTail(t *testing.T) {
	buf := writeChain(t, 5, Options{BatchSize: 4}, false)
	rep := Verify(bytes.NewReader(buf.Bytes()), nil)
	if !rep.OK || rep.Batches != 1 || rep.Unsealed != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestEveryByteFlipDetected(t *testing.T) {
	data := writeChain(t, 6, Options{BatchSize: 4}, true).Bytes()
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x01
		rep := Verify(bytes.NewReader(mut), nil)
		if rep.OK {
			t.Fatalf("flip at byte %d (line content %q) verified", pos, lineAt(data, pos))
		}
	}
	// And a high-bit flip sweep, which exercises different failure
	// shapes (invalid UTF-8, broken JSON structure).
	for pos := 0; pos < len(data); pos += 7 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x80
		if rep := Verify(bytes.NewReader(mut), nil); rep.OK {
			t.Fatalf("high-bit flip at byte %d verified", pos)
		}
	}
}

func TestTamperLocalization(t *testing.T) {
	data := writeChain(t, 6, Options{BatchSize: 3}, true).Bytes()
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Layout: header, r1..r3, b1, r4..r6, b2. Flip a content byte
	// inside record 5's line (index 6) and the report must localize
	// seq 5, not just "somewhere".
	target := 6
	mut := bytes.Join(lines, nil)
	off := 0
	for i := 0; i < target; i++ {
		off += len(lines[i])
	}
	idx := bytes.Index(lines[target], []byte("solve.done"))
	if idx < 0 {
		t.Fatalf("layout changed: %q", lines[target])
	}
	mut[off+idx] = 'x'
	rep := Verify(bytes.NewReader(mut), nil)
	if rep.OK {
		t.Fatal("tampered record verified")
	}
	if rep.Line != target+1 || rep.Seq != 5 {
		t.Fatalf("localized line %d seq %d, want line %d seq 5 (%s)", rep.Line, rep.Seq, target+1, rep.Reason)
	}
}

func TestReorderDetected(t *testing.T) {
	data := writeChain(t, 6, Options{BatchSize: 3}, true).Bytes()
	lines := bytes.SplitAfter(data, []byte("\n"))
	swap := func(i, j int) []byte {
		cp := append([][]byte(nil), lines...)
		cp[i], cp[j] = cp[j], cp[i]
		return bytes.Join(cp, nil)
	}
	// records 1 and 2 swapped; batches 1 and 2 swapped; record moved
	// across a batch boundary.
	for _, mut := range [][]byte{swap(1, 2), swap(4, 8), swap(3, 5)} {
		if rep := Verify(bytes.NewReader(mut), nil); rep.OK {
			t.Fatal("reordered chain verified")
		}
	}
}

func TestSignedRoots(t *testing.T) {
	key := []byte("audit-root-key")
	buf := writeChain(t, 8, Options{BatchSize: 4, Key: key}, true)
	data := buf.Bytes()
	if rep := Verify(bytes.NewReader(data), key); !rep.OK || !rep.Signed {
		t.Fatalf("keyed verify: %+v", rep)
	}
	if rep := Verify(bytes.NewReader(data), nil); !rep.OK || !rep.Signed {
		t.Fatalf("unkeyed verify of signed chain: %+v", rep)
	}
	if rep := Verify(bytes.NewReader(data), []byte("wrong")); rep.OK {
		t.Fatal("wrong key verified")
	}
	unsigned := writeChain(t, 4, Options{BatchSize: 4}, true)
	if rep := Verify(bytes.NewReader(unsigned.Bytes()), key); rep.OK {
		t.Fatal("unsigned chain verified under a key")
	}
}

func TestResumeWriter(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Options{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Resume mid-batch (3 sealed + 1 unsealed) and continue.
	w2, err := ResumeWriter(&buf, bytes.NewReader(buf.Bytes()), Options{BatchSize: 3})
	if err != nil {
		t.Fatalf("ResumeWriter: %v", err)
	}
	for i := 4; i < 7; i++ {
		if err := w2.Append([]byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Seal(); err != nil {
		t.Fatal(err)
	}
	rep := Verify(bytes.NewReader(buf.Bytes()), nil)
	if !rep.OK || rep.Records != 7 || rep.Batches != 3 || rep.Unsealed != 0 {
		t.Fatalf("resumed chain: %+v", rep)
	}
	// Resuming a tampered chain must refuse.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0x01
	if _, err := ResumeWriter(io_Discard(), bytes.NewReader(data), Options{}); err == nil {
		t.Fatal("resumed a tampered chain")
	}
}

func io_Discard() *bytes.Buffer { return &bytes.Buffer{} }

func TestOpenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.chain")
	w, f, err := OpenFile(path, Options{BatchSize: 2})
	if err != nil {
		t.Fatalf("OpenFile fresh: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	w2, f2, err := OpenFile(path, Options{BatchSize: 2})
	if err != nil {
		t.Fatalf("OpenFile resume: %v", err)
	}
	if err := w2.Append([]byte(`{"n":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Seal(); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(bytes.NewReader(data), nil)
	if !rep.OK || rep.Records != 4 || rep.Batches != 2 {
		t.Fatalf("file chain: %+v", rep)
	}
}

func TestProveAndCheck(t *testing.T) {
	key := []byte("prove-key")
	buf := writeChain(t, 9, Options{BatchSize: 4, Key: key}, true)
	data := buf.Bytes()
	for seq := uint64(1); seq <= 9; seq++ {
		proof, err := Prove(bytes.NewReader(data), seq, key)
		if err != nil {
			t.Fatalf("Prove(%d): %v", seq, err)
		}
		if err := CheckProof(proof, key); err != nil {
			t.Fatalf("CheckProof(%d): %v", seq, err)
		}
		if err := CheckProof(proof, nil); err != nil {
			t.Fatalf("unkeyed CheckProof(%d): %v", seq, err)
		}
		// A mutated record must not fold to the root.
		bad := *proof
		bad.Record = []byte(`{"forged":true}`)
		if err := CheckProof(&bad, nil); err == nil {
			t.Fatalf("forged record for seq %d proved", seq)
		}
		if err := CheckProof(proof, []byte("wrong")); err == nil {
			t.Fatalf("wrong key accepted for seq %d", seq)
		}
	}
	if _, err := Prove(bytes.NewReader(data), 0, nil); err == nil {
		t.Fatal("Prove(0) succeeded")
	}
	if _, err := Prove(bytes.NewReader(data), 99, nil); err == nil {
		t.Fatal("Prove past end succeeded")
	}
	// Proof round-trips through its document encoding.
	proof, err := Prove(bytes.NewReader(data), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := schemaio.EncodeAuditProof(proof)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := schemaio.DecodeAuditProofBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProof(dec, key); err != nil {
		t.Fatalf("decoded proof: %v", err)
	}
}

func TestProveUnsealedRecord(t *testing.T) {
	buf := writeChain(t, 5, Options{BatchSize: 4}, false)
	if _, err := Prove(bytes.NewReader(buf.Bytes()), 5, nil); err == nil || !strings.Contains(err.Error(), "not sealed") {
		t.Fatalf("Prove(unsealed) err = %v", err)
	}
}

func TestReadStats(t *testing.T) {
	buf := writeChain(t, 7, Options{BatchSize: 4}, false)
	st, err := ReadStats(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 7 || st.Batches != 1 || st.Unsealed != 3 || st.LastSeq != 7 || st.LastRoot == "" {
		t.Fatalf("stats: %+v", st)
	}
	data := buf.Bytes()
	data[len(data)/3] ^= 0x04
	if _, err := ReadStats(bytes.NewReader(data), nil); err == nil {
		t.Fatal("stats over tampered chain succeeded")
	}
}

func TestVerifyStructuralCases(t *testing.T) {
	header := string(schemaio.EncodeAuditChainHeader()) + "\n"
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"no header", `{"k":"r","seq":1,"record":{},"leaf":"x","chain":"x"}` + "\n"},
		{"double header", header + header},
		{"garbage line", header + "not json\n"},
		{"batch sealing nothing", header + `{"k":"b","batch":1,"from":1,"to":1,"root":"` + strings.Repeat("0", 64) + `"}` + "\n"},
	}
	for _, tc := range cases {
		if rep := Verify(strings.NewReader(tc.data), nil); rep.OK {
			t.Errorf("%s: verified", tc.name)
		}
	}
	if rep := Verify(strings.NewReader(header), nil); !rep.OK || rep.Records != 0 {
		t.Errorf("header-only chain: %+v", rep)
	}
}

func TestAppendRejectsInvalidJSON(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte(`{"broken":`)); err == nil {
		t.Fatal("invalid record accepted")
	}
	if seq, _, _ := w.Stats(); seq != 0 {
		t.Fatalf("failed append advanced seq to %d", seq)
	}
}

// lineAt reports the chain line containing byte pos, for failure output.
func lineAt(data []byte, pos int) string {
	start := bytes.LastIndexByte(data[:pos], '\n') + 1
	end := bytes.IndexByte(data[pos:], '\n')
	if end < 0 {
		end = len(data)
	} else {
		end += pos
	}
	return string(data[start:end])
}
