package experiments

import (
	"fmt"
	"reflect"
	"time"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/synth"
)

// This file holds the churn experiment behind BENCH_churn.json: after a
// universe mutation, a live session's incremental re-solve (in-place
// PCSA and similarity-index maintenance plus a repaired warm start)
// against the from-scratch alternative — rebuild the engine over the
// mutated universe and solve cold. The engine's differential churn suite
// proves both paths produce identical solutions, so the experiment only
// measures the cost gap and re-checks the equality it relies on.

// ChurnRow is one universe size of the sweep: a seeded mutation schedule
// applied to one session, with both response strategies timed per batch.
type ChurnRow struct {
	// U is the initial universe size (number of sources).
	U int `json:"u"`
	// Batches is the number of mutation batches applied, Mutations the
	// total mutations across them.
	Batches   int `json:"batches"`
	Mutations int `json:"mutations"`
	// WarmSeconds totals the incremental path per batch: ApplyChurn
	// (signature and index maintenance) plus the warm-started re-solve.
	WarmSeconds float64 `json:"warm_seconds"`
	// FreshSeconds totals the from-scratch path per batch: engine.New
	// over the mutated universe plus a cold solve of the identical
	// problem.
	FreshSeconds float64 `json:"fresh_seconds"`
	// Speedup is FreshSeconds / WarmSeconds.
	Speedup float64 `json:"speedup"`
	// MaintainSeconds isolates the incremental bookkeeping (ApplyChurn
	// alone) and RebuildSeconds its from-scratch counterpart (engine.New
	// alone: re-interning the vocabulary and re-unioning every
	// cooperative signature). Their ratio is the maintenance win proper;
	// the totals above dilute it with the shared solve budget.
	MaintainSeconds float64 `json:"maintain_seconds"`
	RebuildSeconds  float64 `json:"rebuild_seconds"`
	// SameSolutions records that every batch's warm re-solve chose
	// exactly the from-scratch solution (operational metadata aside).
	SameSolutions bool `json:"same_solutions"`
	// Quality is the final incumbent quality after the whole schedule.
	Quality float64 `json:"quality"`
}

// ChurnResult is the full churn experiment output.
type ChurnResult struct {
	// M is the selection bound, Steps the schedule length used at every
	// size.
	M     int `json:"m"`
	Steps int `json:"steps"`
	// Evals is the initial solve's budget; RefreshEvals the smaller
	// budget every post-churn re-solve uses on BOTH paths. A refresh
	// after a small mutation batch is an update, not a from-scratch
	// exploration, so it gets a quarter of the initial budget — and
	// since warm and fresh solve the identical problem snapshot, the
	// per-batch equality check is unaffected.
	Evals        int        `json:"evals"`
	RefreshEvals int        `json:"refresh_evals"`
	Rows         []ChurnRow `json:"rows"`
}

// ChurnSizes returns the sweep's initial universe sizes. The full sweep
// ends at 10⁴ — the "warm re-solve beats rebuild at internet scale"
// claim — while Quick stays small for CI smoke runs.
func ChurnSizes(o Options) []int {
	if o.Quick {
		return []int{300}
	}
	return []int{1_000, 10_000}
}

// churnSteps is the schedule length per size.
func churnSteps(o Options) int {
	if o.Quick {
		return 3
	}
	return 10
}

// cloneChurnUniverse copies a universe deeply enough that churn on the
// copy never touches the original: the source slice and every per-source
// slice/map are fresh; immutable sketches stay shared.
func cloneChurnUniverse(u *model.Universe) *model.Universe {
	out := &model.Universe{Sources: append([]model.Source(nil), u.Sources...)}
	for i := range out.Sources {
		s := &out.Sources[i]
		s.Attributes = append([]string(nil), s.Attributes...)
		s.AttrSignatures = append([]*pcsa.Sketch(nil), s.AttrSignatures...)
		if s.Characteristics != nil {
			cc := make(map[string]float64, len(s.Characteristics))
			//ube:nondeterministic-ok key-for-key map copy is order-independent
			for k, v := range s.Characteristics {
				cc[k] = v
			}
			s.Characteristics = cc
		}
	}
	return out
}

// canonChurnSolution strips the operational fields (wall clock, cache
// traffic) so warm and cold solves compare equal.
func canonChurnSolution(sol *engine.Solution) engine.Solution {
	out := *sol
	out.Elapsed = 0
	out.MatchCache = engine.CacheStats{}
	return out
}

// Churn runs the experiment: per universe size, generate a seeded churn
// schedule, play it against one session, and after every batch time the
// session's incremental re-solve against rebuilding an engine over the
// mutated universe and solving the identical problem cold.
func Churn(o Options) (*ChurnResult, error) {
	const m = 10
	steps := churnSteps(o)
	res := &ChurnResult{M: m, Steps: steps, Evals: o.evals(), RefreshEvals: max(o.evals()/4, 50)}
	for _, n := range ChurnSizes(o) {
		cfg := synth.QuickConfig(n)
		cfg.Seed += o.Seed
		base, batches, err := synth.ChurnSchedule(cfg, synth.ChurnConfig{
			Seed:       cfg.Seed + 71,
			Steps:      steps,
			MinSources: 2 * m,
		})
		if err != nil {
			return nil, err
		}

		e, err := engine.New(cloneChurnUniverse(base), engine.WithSparseScores())
		if err != nil {
			return nil, err
		}
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Seed = int64(n) * 7
		sess := engine.NewSession(e, p)
		if _, err := sess.Solve(); err != nil {
			return nil, err
		}
		// Post-churn re-solves run at the refresh budget; SolveInput
		// snapshots the same problem for the from-scratch path, so both
		// sides stay on identical inputs.
		refresh := p
		refresh.MaxEvals = res.RefreshEvals
		sess.SetProblem(refresh)

		row := ChurnRow{U: n, Batches: len(batches), SameSolutions: true}
		for bi, batch := range batches {
			row.Mutations += len(batch)

			t0 := time.Now()
			if _, err := sess.ApplyChurn(batch); err != nil {
				return nil, fmt.Errorf("churn: U=%d batch %d: %w", n, bi, err)
			}
			row.MaintainSeconds += time.Since(t0).Seconds()
			input := sess.SolveInput()
			warm, err := sess.Solve()
			if err != nil {
				return nil, fmt.Errorf("churn: U=%d batch %d warm re-solve: %w", n, bi, err)
			}
			row.WarmSeconds += time.Since(t0).Seconds()

			// The clone stands in for re-ingesting the catalog and is
			// charged to neither path; from-scratch pays engine.New plus
			// the cold solve (which includes the lazy index build).
			mutated := cloneChurnUniverse(e.Universe())
			t1 := time.Now()
			fresh, err := engine.New(mutated, engine.WithSparseScores())
			if err != nil {
				return nil, err
			}
			row.RebuildSeconds += time.Since(t1).Seconds()
			inputCopy := input
			cold, err := fresh.Solve(&inputCopy)
			if err != nil {
				return nil, fmt.Errorf("churn: U=%d batch %d from-scratch solve: %w", n, bi, err)
			}
			row.FreshSeconds += time.Since(t1).Seconds()

			if !reflect.DeepEqual(canonChurnSolution(warm), canonChurnSolution(cold)) {
				return nil, fmt.Errorf("churn: U=%d batch %d: warm re-solve diverged from from-scratch solve", n, bi)
			}
			row.Quality = warm.Quality
		}
		if row.WarmSeconds > 0 {
			row.Speedup = row.FreshSeconds / row.WarmSeconds
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
