package experiments

import (
	"reflect"
	"time"

	"ube/internal/engine"
)

// IncrementalRow is one cell of the incremental-vs-legacy evaluation
// pipeline ablation: the same Figure 6 problem solved twice over the same
// universe, once through the seed evaluation path (sorted-slice clustering
// agenda, whole-set QEF evaluation) and once through the incremental
// pipeline (heap agenda, delta objective, incumbent snapshot cache).
type IncrementalRow struct {
	// M is the number of sources to choose.
	M int
	// Seconds and Quality are keyed by pipeline name: "legacy" and
	// "incremental", mirroring the per-variant maps of TimeQualityRow.
	Seconds map[string]float64
	Quality map[string]float64
	// Speedup is Seconds[legacy] / Seconds[incremental].
	Speedup float64
	// SameSources records whether both pipelines chose the identical
	// source set — the "Q(S) unchanged for fixed seeds" check.
	SameSources bool
}

// IncrementalPipelines names the two compared configurations.
var IncrementalPipelines = []string{"legacy", "incremental"}

// IncrementalMs returns the m values and universe size of the ablation:
// the two hardest Figure 6 cells (m = 40, 50 at N = 200), where per-eval
// cost dominates solve time.
func IncrementalMs(o Options) (ms []int, n int) {
	if o.Quick {
		return []int{12, 15}, 60
	}
	return []int{40, 50}, 200
}

// Incremental runs the ablation. Both engines are built over one generated
// universe and solve identical problems (same seeds, budgets and weights:
// the unconstrained Figure 6 cells), so any divergence in the chosen
// sources or quality would indicate the incremental path changed the
// objective rather than its cost.
func Incremental(o Options) ([]IncrementalRow, error) {
	ms, n := IncrementalMs(o)
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	legacy, err := engine.New(s.U, engine.WithLegacyEvaluation())
	if err != nil {
		return nil, err
	}
	engines := map[string]*engine.Engine{"legacy": legacy, "incremental": s.E}

	rows := make([]IncrementalRow, 0, len(ms))
	for _, m := range ms {
		p, err := s.Problem(m, Variants[0], o, int64(m))
		if err != nil {
			return nil, err
		}
		row := IncrementalRow{
			M:       m,
			Seconds: make(map[string]float64, len(engines)),
			Quality: make(map[string]float64, len(engines)),
		}
		sols := make(map[string]*engine.Solution, len(engines))
		for _, name := range IncrementalPipelines {
			start := time.Now()
			sol, err := engines[name].Solve(&p)
			if err != nil {
				return nil, err
			}
			row.Seconds[name] = time.Since(start).Seconds()
			row.Quality[name] = sol.Quality
			sols[name] = sol
		}
		row.Speedup = row.Seconds["legacy"] / row.Seconds["incremental"]
		row.SameSources = reflect.DeepEqual(sols["legacy"].Sources, sols["incremental"].Sources)
		rows = append(rows, row)
	}
	return rows, nil
}
