package experiments

import (
	"testing"
)

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options { return Options{Quick: true, MaxEvals: 600} }

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sizes, _ := Fig5Sizes(quickOpts())
	if len(rows) != len(sizes) {
		t.Fatalf("%d rows for %d sizes", len(rows), len(sizes))
	}
	for i, r := range rows {
		if r.X != sizes[i] {
			t.Errorf("row %d X = %d, want %d", i, r.X, sizes[i])
		}
		for _, v := range Variants {
			if r.Seconds[v.Name] <= 0 {
				t.Errorf("N=%d %s: nonpositive time", r.X, v.Name)
			}
			if q := r.Quality[v.Name]; q <= 0 || q > 1 {
				t.Errorf("N=%d %s: quality %v", r.X, v.Name, q)
			}
		}
	}
}

func TestFig6And7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	o := quickOpts()
	rows, err := Fig6And7(o)
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := Fig6Ms(o)
	if len(rows) != len(ms) {
		t.Fatalf("%d rows for %d m values", len(rows), len(ms))
	}
	// The paper's qualitative claim: quality increases with m (more
	// options to exploit) and constrained runs never beat unconstrained
	// by much. Check the endpoints of the unconstrained series.
	first := rows[0].Quality["none"]
	last := rows[len(rows)-1].Quality["none"]
	if last < first-0.02 {
		t.Errorf("quality should grow with m: m=%d → %.3f, m=%d → %.3f",
			rows[0].X, first, rows[len(rows)-1].X, last)
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	// Increasing the cardinality weight must not decrease the chosen
	// solution's cardinality by much overall: last point ≥ first point.
	if rows[9].Card < rows[0].Card-0.05 {
		t.Errorf("card at w=1.0 (%.3f) below card at w=0.1 (%.3f)", rows[9].Card, rows[0].Card)
	}
	for _, r := range rows {
		if r.Card < 0 || r.Card > 1 {
			t.Errorf("card %v out of range at w=%v", r.Card, r.Weight)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	o := quickOpts()
	rows, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Selected > r.M {
			t.Errorf("m=%d: selected %d sources", r.M, r.Selected)
		}
		if r.False != 0 {
			t.Errorf("m=%d: %d false GAs; the matcher should produce none on this workload", r.M, r.False)
		}
		if r.TrueGAs > 14 {
			t.Errorf("m=%d: %d true GAs > 14 concepts", r.M, r.TrueGAs)
		}
	}
	// More sources → at least as many true GAs at the endpoints.
	if rows[len(rows)-1].TrueGAs < rows[0].TrueGAs {
		t.Errorf("true GAs shrank with m: %d → %d", rows[0].TrueGAs, rows[len(rows)-1].TrueGAs)
	}
}

func TestPCSAAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := PCSAAccuracy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.SignatureBytes == 0 {
		t.Fatal("empty result")
	}
	// The paper reports 7% worst case; allow headroom for the scaled-down
	// workload's smaller unions.
	if res.WorstErrPct > 15 {
		t.Errorf("worst PCSA error %.1f%% exceeds 15%%", res.WorstErrPct)
	}
	for _, r := range res.Rows {
		if r.Exact <= 0 {
			t.Errorf("union of %d sources has exact count %d", r.Sources, r.Exact)
		}
	}
}

func TestWeightPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	res, err := WeightPerturbation(quickOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SourcesChanged < 0 || r.GAsChanged < 0 {
			t.Errorf("negative diff: %+v", r)
		}
	}
}

func TestSolverComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows, err := SolverComparison(quickOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d solver rows", len(rows))
	}
	var tabuQ float64
	for _, r := range rows {
		if r.Name == "tabu" {
			tabuQ = r.Quality
		}
		if r.Quality <= 0 {
			t.Errorf("%s: quality %v", r.Name, r.Quality)
		}
		if r.Feasible != r.Seeds {
			t.Errorf("%s: %d/%d feasible", r.Name, r.Feasible, r.Seeds)
		}
	}
	if tabuQ == 0 {
		t.Error("tabu row missing")
	}
}

func TestProblemVariantsRespectM(t *testing.T) {
	o := quickOpts()
	s, err := NewSetup(60, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants {
		p, err := s.Problem(10, v, o, 3)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if len(p.Constraints.Sources) != v.Src {
			t.Errorf("%s: %d source constraints", v.Name, len(p.Constraints.Sources))
		}
		if len(p.Constraints.GAs) != v.GA {
			t.Errorf("%s: %d GA constraints", v.Name, len(p.Constraints.GAs))
		}
		if implied := p.Constraints.ImpliedSources(); len(implied) > 10 {
			t.Errorf("%s: %d implied sources exceed m", v.Name, len(implied))
		}
		if err := p.Constraints.Validate(s.U); err != nil {
			t.Errorf("%s: invalid constraints: %v", v.Name, err)
		}
	}
}

func TestUncooperative(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows, err := Uncooperative(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Fraction != 0 || rows[4].Fraction != 1 {
		t.Errorf("fractions wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.TrueCoverage <= 0 || r.TrueCoverage > 1 {
			t.Errorf("true coverage %v out of range at %.0f%%", r.TrueCoverage, r.Fraction*100)
		}
		if r.Quality <= 0 {
			t.Errorf("quality %v at %.0f%%", r.Quality, r.Fraction*100)
		}
		if r.UncoopSelected > r.Selected {
			t.Errorf("accounting wrong: %+v", r)
		}
	}
	// With everything uncooperative, every chosen source is uncooperative.
	if rows[4].UncoopSelected != rows[4].Selected {
		t.Errorf("100%% uncooperative row wrong: %+v", rows[4])
	}
	// With full cooperation, none are.
	if rows[0].UncoopSelected != 0 {
		t.Errorf("0%% uncooperative row wrong: %+v", rows[0])
	}
}

func TestDataSim(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows, err := DataSim(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	moreAttrs := 0
	for _, r := range rows {
		if r.DataFalse != 0 {
			t.Errorf("m=%d: data-based matching produced %d false GAs", r.M, r.DataFalse)
		}
		if r.DataAttrs >= r.NameAttrs {
			moreAttrs++
		}
		if r.DataMissed > r.NameMissed {
			t.Errorf("m=%d: data-based matching missed more concepts (%d > %d)", r.M, r.DataMissed, r.NameMissed)
		}
	}
	if moreAttrs < len(rows)/2 {
		t.Errorf("data-based matching should cover at least as many attributes in most rows: %d/%d", moreAttrs, len(rows))
	}
}

func TestThetaSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	rows, err := ThetaSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	var atPaper ThetaRow
	for _, r := range rows {
		if r.Theta == 0.65 {
			atPaper = r
		}
		if r.TrueGAs < 0 || r.TrueGAs > 14 {
			t.Errorf("θ=%.2f: %d true GAs", r.Theta, r.TrueGAs)
		}
	}
	// The paper's θ must not produce false GAs on its own workload.
	if atPaper.False != 0 {
		t.Errorf("θ=0.65 produced %d false GAs", atPaper.False)
	}
}
