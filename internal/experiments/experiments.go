// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is a function returning typed rows; the
// ube-bench command prints them as tables and bench_test.go wraps them as
// benchmarks. The per-experiment parameters follow §7.1/§7.2: θ = 0.65,
// QEF weights 0.25/0.25/0.2/0.15/0.15 (match, cardinality, coverage,
// redundancy, MTTF), constraint variants of 0/1/3/5 source constraints and
// 5 source + 2 GA constraints, with source constraints drawn from
// unperturbed schemas and GA constraints being accurate matchings of up to
// 5 attributes.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ube/internal/datasim"
	"ube/internal/engine"
	"ube/internal/eval"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/search"
	"ube/internal/synth"
)

// Options tunes experiment scale.
type Options struct {
	// Quick scales the workload down ~10× for smoke runs.
	Quick bool
	// MaxEvals is the per-solve objective-evaluation budget (0 means
	// DefaultEvals). All experiments share it so runs are comparable.
	MaxEvals int
	// Seed offsets all experiment randomness.
	Seed int64
}

// DefaultEvals is the per-solve budget used by the experiment harness. It
// is chosen so tabu search has converged on paper-scale instances while a
// full figure grid still runs in minutes.
const DefaultEvals = 6000

func (o Options) evals() int {
	if o.MaxEvals > 0 {
		return o.MaxEvals
	}
	return DefaultEvals
}

// budget scales the per-solve evaluation budget with the size of the
// constrained search neighborhood, as iteration counts conventionally
// scale with instance size in local search: proportional to the number of
// free selection slots (m − |implied constraints|) and to the square root
// of the universe size, normalized so the reference cell (N=200, m=20,
// unconstrained — §7's center point) gets exactly evals(). This is what
// makes the Figure 5/6 time curves move for the paper's reason — a bigger
// space takes longer to search, constraints shrink it.
func (o Options) budget(n, m, implied int) int {
	nRef, mRef := 200.0, 20.0
	if o.Quick {
		nRef, mRef = 60.0, 10.0
	}
	b := float64(o.evals()) * math.Sqrt(float64(n)/nRef) * float64(m-implied) / mRef
	if b < 200 {
		b = 200
	}
	return int(b)
}

// workload returns the workload configuration for n sources.
func (o Options) workload(n int) synth.Config {
	var cfg synth.Config
	if o.Quick {
		cfg = synth.QuickConfig(n)
	} else {
		cfg = synth.DefaultConfig()
		cfg.NumSources = n
	}
	cfg.Seed += o.Seed
	return cfg
}

// Setup is one generated universe with its engine and ground truth.
type Setup struct {
	Cfg   synth.Config
	U     *model.Universe
	Truth *synth.Truth
	E     *engine.Engine
}

// NewSetup generates a universe of n sources and builds its engine.
func NewSetup(n int, o Options) (*Setup, error) {
	cfg := o.workload(n)
	u, truth, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(u)
	if err != nil {
		return nil, err
	}
	return &Setup{Cfg: cfg, U: u, Truth: truth, E: e}, nil
}

// Variant is one constraint configuration of Figures 5–7.
type Variant struct {
	// Name labels the series as in the paper's legends.
	Name string
	// Src is the number of source constraints.
	Src int
	// GA is the number of GA constraints (drawn within the source
	// constraints so C is unchanged).
	GA int
}

// Variants are the five constraint series of Figures 5–7.
var Variants = []Variant{
	{Name: "none", Src: 0, GA: 0},
	{Name: "1src", Src: 1, GA: 0},
	{Name: "3src", Src: 3, GA: 0},
	{Name: "5src", Src: 5, GA: 0},
	{Name: "5src+2ga", Src: 5, GA: 2},
}

// Problem builds the §7 problem for one grid cell.
func (s *Setup) Problem(m int, v Variant, o Options, seed int64) (engine.Problem, error) {
	p := engine.DefaultProblem()
	p.MaxSources = m
	p.Seed = seed
	rng := rand.New(rand.NewSource(seed*7919 + int64(v.Src)*31 + int64(v.GA)))
	if v.Src > 0 {
		cs, err := synth.SourceConstraints(s.Truth, v.Src, s.U.N(), rng)
		if err != nil {
			return p, err
		}
		p.Constraints.Sources = cs
		if v.GA > 0 {
			gas, err := synth.GAConstraints(s.U, s.Truth, v.GA, 5, cs, rng)
			if err != nil {
				return p, err
			}
			p.Constraints.GAs = gas
		}
	}
	p.MaxEvals = o.budget(s.U.N(), m, len(p.Constraints.ImpliedSources()))
	return p, nil
}

// TimeQualityRow is one grid cell of Figures 5–7: solve time and overall
// quality per constraint variant at one x-axis value.
type TimeQualityRow struct {
	// X is the x-axis value: universe size (Fig 5) or sources to choose
	// (Figs 6–7).
	X int
	// Seconds and Quality are keyed by variant name.
	Seconds map[string]float64
	Quality map[string]float64
}

// Fig5Sizes returns the universe sizes of Figure 5.
func Fig5Sizes(o Options) (sizes []int, m int) {
	if o.Quick {
		return []int{40, 60, 80, 100}, 10
	}
	return []int{100, 200, 300, 400, 500, 600, 700}, 20
}

// Fig5 regenerates Figure 5: time to choose m sources from universes of
// varying size, per constraint variant.
func Fig5(o Options) ([]TimeQualityRow, error) {
	sizes, m := Fig5Sizes(o)
	rows := make([]TimeQualityRow, 0, len(sizes))
	for _, n := range sizes {
		s, err := NewSetup(n, o)
		if err != nil {
			return nil, err
		}
		row, err := s.runVariants(m, o, int64(n))
		if err != nil {
			return nil, err
		}
		row.X = n
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6Ms returns the m values (sources to choose) and universe size of
// Figures 6–7 and Table 1.
func Fig6Ms(o Options) (ms []int, n int) {
	if o.Quick {
		return []int{6, 9, 12, 15}, 60
	}
	return []int{10, 20, 30, 40, 50}, 200
}

// Fig6And7 regenerates Figures 6 and 7 in one pass: time (Fig 6) and
// overall quality (Fig 7) when choosing m = 10..50 sources from a
// 200-source universe, per constraint variant.
func Fig6And7(o Options) ([]TimeQualityRow, error) {
	ms, n := Fig6Ms(o)
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	rows := make([]TimeQualityRow, 0, len(ms))
	for _, m := range ms {
		row, err := s.runVariants(m, o, int64(m))
		if err != nil {
			return nil, err
		}
		row.X = m
		rows = append(rows, row)
	}
	return rows, nil
}

// runVariants solves one x-axis cell for every constraint variant.
func (s *Setup) runVariants(m int, o Options, seed int64) (TimeQualityRow, error) {
	row := TimeQualityRow{
		Seconds: make(map[string]float64, len(Variants)),
		Quality: make(map[string]float64, len(Variants)),
	}
	for _, v := range Variants {
		p, err := s.Problem(m, v, o, seed)
		if err != nil {
			return row, fmt.Errorf("variant %s: %w", v.Name, err)
		}
		start := time.Now()
		sol, err := s.E.Solve(&p)
		if err != nil {
			return row, fmt.Errorf("variant %s: %w", v.Name, err)
		}
		row.Seconds[v.Name] = time.Since(start).Seconds()
		row.Quality[v.Name] = sol.Quality
	}
	return row, nil
}

// Fig8Row is one point of Figure 8: the cardinality QEF value of the
// solution as the weight on cardinality grows.
type Fig8Row struct {
	// Weight is w_card.
	Weight float64
	// Card is the Card QEF value of the chosen solution.
	Card float64
	// Quality is the overall objective, for reference.
	Quality float64
}

// Fig8 regenerates Figure 8: vary the cardinality weight from 0.1 to 1.0
// (the remaining weight split equally over the other four QEFs) and report
// the cardinality of the chosen solution. The curve should rise and
// flatten at ≥ 0.5 once the top-cardinality matching sources are already
// being chosen.
func Fig8(o Options) ([]Fig8Row, error) {
	ms, n := Fig6Ms(o)
	_ = ms
	m := 20
	if o.Quick {
		m = 10
	}
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	others := []string{engine.MatchQEFName, "coverage", "redundancy", "mttf"}
	for w := 0.1; w < 1.0+1e-9; w += 0.1 {
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Seed = 17
		p.Weights["card"] = w
		for _, name := range others {
			p.Weights[name] = (1 - w) / float64(len(others))
		}
		sol, err := s.E.Solve(&p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{
			Weight:  w,
			Card:    sol.Breakdown["card"],
			Quality: sol.Quality,
		})
	}
	return rows, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	// M is the number of sources µBE was asked to choose.
	M int
	// Selected is how many it chose.
	Selected int
	// TrueGAs, Attrs and Missed are the paper's three columns: true GAs
	// selected, attributes in true GAs, and true GAs missed.
	TrueGAs int
	Attrs   int
	Missed  int
	// False and Junk extend the table: mixed-concept GAs (the paper
	// reports zero) and junk-only GAs.
	False int
	Junk  int
}

// Table1 regenerates Table 1: GA quality when choosing m = 10..50 sources
// from a 200-source universe with no constraints.
func Table1(o Options) ([]Table1Row, error) {
	ms, n := Fig6Ms(o)
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, m := range ms {
		p, err := s.Problem(m, Variants[0], o, int64(m))
		if err != nil {
			return nil, err
		}
		sol, err := s.E.Solve(&p)
		if err != nil {
			return nil, err
		}
		rep := eval.Evaluate(s.Truth, sol.Sources, sol.Schema)
		rows = append(rows, Table1Row{
			M:        m,
			Selected: rep.SourcesSelected,
			TrueGAs:  rep.TrueGAs,
			Attrs:    rep.AttrsInTrueGAs,
			Missed:   rep.MissedGAs,
			False:    rep.FalseGAs,
			Junk:     rep.JunkGAs,
		})
	}
	return rows, nil
}

// PCSARow is one union-estimation check of the §7.3 accuracy experiment.
type PCSARow struct {
	// Sources is the union size |S|.
	Sources int
	// Estimate and Exact are the sketch estimate and true distinct count
	// of the union.
	Estimate float64
	Exact    int64
	// ErrPct is the relative error in percent.
	ErrPct float64
}

// PCSAResult is the full §7.3 accuracy experiment output.
type PCSAResult struct {
	Rows []PCSARow
	// WorstErrPct is the worst-case relative error (the paper reports
	// 7% against exact counting).
	WorstErrPct float64
	// SignatureBytes is the total memory held by all source signatures
	// (the paper's ≤70 MB observation is dominated by these).
	SignatureBytes int
}

// PCSAAccuracy estimates the cardinality of random source unions via
// signature ORs and compares against exact counts obtained by replaying
// the generator's tuple streams.
func PCSAAccuracy(o Options) (*PCSAResult, error) {
	n := 200
	if o.Quick {
		n = 60
	}
	cfg := o.workload(n)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	res := &PCSAResult{}
	for i := range u.Sources {
		res.SignatureBytes += u.Sources[i].Signature.SizeBytes()
	}
	rng := rand.New(rand.NewSource(41 + o.Seed))
	exact := pcsa.NewDenseSet(cfg.PoolSize)
	for _, k := range []int{1, 2, 5, 10, 20, 50} {
		if k > n {
			continue
		}
		// Draw k distinct sources.
		perm := rng.Perm(n)[:k]
		sigs := make([]*pcsa.Sketch, k)
		exact.Reset()
		for i, id := range perm {
			sigs[i] = u.Sources[id].Signature
			synth.StreamTuples(cfg, id, u.Sources[id].Cardinality, exact.Add)
		}
		union, err := pcsa.Union(sigs...)
		if err != nil {
			return nil, err
		}
		est := union.Estimate()
		truth := exact.Count()
		errPct := 100 * abs(est-float64(truth)) / float64(truth)
		res.Rows = append(res.Rows, PCSARow{Sources: k, Estimate: est, Exact: truth, ErrPct: errPct})
		if errPct > res.WorstErrPct {
			res.WorstErrPct = errPct
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PerturbRow is one trial of the §7.4 weight-sensitivity experiment.
type PerturbRow struct {
	// Trial indexes the perturbed rerun.
	Trial int
	// SourcesChanged is |S_base Δ S_perturbed| / 2 (swapped sources).
	SourcesChanged int
	// GAsChanged is the number of GAs in the base schema with no equal
	// GA in the perturbed schema.
	GAsChanged int
}

// PerturbResult summarizes the weight-sensitivity experiment.
type PerturbResult struct {
	Rows []PerturbRow
	// MaxGAsChanged and MaxSourcesChanged are the worst cases across
	// trials; the paper reports ≤1 GA changed and sources rarely
	// changing under ±15% weight noise.
	MaxGAsChanged     int
	MaxSourcesChanged int
}

// WeightPerturbation solves a base problem to get a reference solution,
// then re-solves trials times with every weight independently perturbed by
// up to ±15% (renormalized), warm-starting each trial from the reference
// so the measurement isolates weight-induced movement from search noise,
// and reports how much the solution moved.
func WeightPerturbation(o Options, trials int) (*PerturbResult, error) {
	_, n := Fig6Ms(o)
	m := 20
	if o.Quick {
		m = 10
	}
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	base := engine.DefaultProblem()
	base.MaxSources = m
	base.MaxEvals = o.evals()
	base.Seed = 5
	baseSol, err := s.E.Solve(&base)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(97 + o.Seed))
	res := &PerturbResult{}
	for trial := 0; trial < trials; trial++ {
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Seed = 5 // same seed: only the weights move
		p.InitialSources = baseSol.Sources
		sum := 0.0
		for k, v := range p.Weights {
			v *= 1 + (rng.Float64()*2-1)*0.15
			p.Weights[k] = v
			sum += v
		}
		for k := range p.Weights {
			p.Weights[k] /= sum
		}
		sol, err := s.E.Solve(&p)
		if err != nil {
			return nil, err
		}
		row := PerturbRow{
			Trial:          trial,
			SourcesChanged: setDiff(baseSol.Set, sol.Set),
			GAsChanged:     schemaDiffShared(baseSol, sol),
		}
		res.Rows = append(res.Rows, row)
		if row.GAsChanged > res.MaxGAsChanged {
			res.MaxGAsChanged = row.GAsChanged
		}
		if row.SourcesChanged > res.MaxSourcesChanged {
			res.MaxSourcesChanged = row.SourcesChanged
		}
	}
	return res, nil
}

// setDiff counts sources in exactly one of the two sets, halved (a swap
// counts once).
func setDiff(a, b *model.SourceSet) int {
	d := 0
	a.ForEach(func(id int) {
		if !b.Has(id) {
			d++
		}
	})
	b.ForEach(func(id int) {
		if !a.Has(id) {
			d++
		}
	})
	return d / 2
}

// schemaDiffShared counts mediation changes between two solutions: both
// schemas are projected onto the sources the two solutions share (dropping
// attributes of swapped-out sources and GAs that thereby lose match
// status), and the count is the number of projected GAs present in one
// projection but not the other. This separates "the schema regrouped
// attributes" from "a source was swapped", which the sources-changed
// metric already reports.
func schemaDiffShared(a, b *engine.Solution) int {
	if a.Schema == nil || b.Schema == nil {
		if a.Schema == nil && b.Schema == nil {
			return 0
		}
		if a.Schema == nil {
			return len(b.Schema.GAs)
		}
		return len(a.Schema.GAs)
	}
	shared := a.Set.Clone()
	a.Set.ForEach(func(id int) {
		if !b.Set.Has(id) {
			shared.Remove(id)
		}
	})
	pa := project(a.Schema, shared)
	pb := project(b.Schema, shared)
	d := 0
	for _, g := range pa {
		if !containsEqual(pb, g) {
			d++
		}
	}
	for _, h := range pb {
		if !containsEqual(pa, h) {
			d++
		}
	}
	return d
}

func containsEqual(gas []model.GA, g model.GA) bool {
	for _, h := range gas {
		if g.Equal(h) {
			return true
		}
	}
	return false
}

// project keeps only the attributes of GAs that come from sources in
// keep, dropping GAs that no longer express a matching (< 2 attributes).
func project(m *model.MediatedSchema, keep *model.SourceSet) []model.GA {
	var out []model.GA
	for _, g := range m.GAs {
		var refs []model.AttrRef
		for _, r := range g {
			if keep.Has(r.Source) {
				refs = append(refs, r)
			}
		}
		if len(refs) >= 2 {
			out = append(out, model.NewGA(refs...))
		}
	}
	return out
}

// SolverRow is one optimizer's result in the §6/§7.1 comparison.
type SolverRow struct {
	Name string
	// Quality is the mean overall quality across seeds.
	Quality float64
	// Seconds is the mean solve time.
	Seconds float64
	// Feasible counts feasible runs.
	Feasible int
	// Seeds is the number of runs.
	Seeds int
}

// SolverComparison re-runs the paper's optimizer comparison: tabu search
// against stochastic local search, simulated annealing, particle swarm and
// greedy, all under the same evaluation budget on the same instances.
func SolverComparison(o Options, seeds int) ([]SolverRow, error) {
	_, n := Fig6Ms(o)
	m := 20
	if o.Quick {
		m = 10
	}
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	names := []string{"tabu", "sls", "anneal", "pso", "greedy"}
	rows := make([]SolverRow, 0, len(names))
	for _, name := range names {
		opt, _ := search.ByName(name)
		row := SolverRow{Name: name, Seeds: seeds}
		for seed := int64(0); seed < int64(seeds); seed++ {
			p := engine.DefaultProblem()
			p.MaxSources = m
			p.MaxEvals = o.evals()
			p.Optimizer = opt
			p.Seed = 100 + seed
			start := time.Now()
			sol, err := s.E.Solve(&p)
			if err != nil {
				return nil, err
			}
			row.Seconds += time.Since(start).Seconds()
			row.Quality += sol.Quality
			if sol.Feasible {
				row.Feasible++
			}
		}
		row.Quality /= float64(seeds)
		row.Seconds /= float64(seeds)
		rows = append(rows, row)
	}
	return rows, nil
}

// UncoopRow is one point of the §4 uncooperative-sources experiment.
type UncoopRow struct {
	// Fraction of sources that refuse to provide PCSA signatures.
	Fraction float64
	// Quality is the overall objective of the chosen solution (its
	// coverage/redundancy terms see only cooperative sources).
	Quality float64
	// TrueCoverage is the exact fraction of the universe's distinct
	// tuples the chosen sources actually hold, computed by replaying
	// the generator's tuple streams — the ground truth the estimator
	// can no longer see.
	TrueCoverage float64
	// UncoopSelected counts uncooperative sources in the solution; §4
	// says they can still be chosen on the strength of other QEFs.
	UncoopSelected int
	// Selected is |S|.
	Selected int
}

// Uncooperative degrades the universe by stripping signatures from a
// growing random fraction of sources and measures how solution quality and
// true data coverage hold up — the §4 claim that µBE keeps working with
// partial cooperation, assigning uncooperative sources zero coverage and
// redundancy but letting them compete on the other QEFs.
func Uncooperative(o Options) ([]UncoopRow, error) {
	_, n := Fig6Ms(o)
	m := 20
	if o.Quick {
		m = 10
	}
	cfg := o.workload(n)
	base, _, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	// Exact distinct count of the whole universe, for true coverage.
	all := pcsa.NewDenseSet(cfg.PoolSize)
	for i := range base.Sources {
		synth.StreamTuples(cfg, i, base.Sources[i].Cardinality, all.Add)
	}
	universeDistinct := float64(all.Count())

	rng := rand.New(rand.NewSource(271 + o.Seed))
	var rows []UncoopRow
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		// Strip signatures from a random fraction.
		u := &model.Universe{Sources: make([]model.Source, n)}
		copy(u.Sources, base.Sources)
		perm := rng.Perm(n)
		uncoop := make(map[int]bool, n)
		for _, id := range perm[:int(frac*float64(n))] {
			src := u.Sources[id]
			src.Signature = nil
			u.Sources[id] = src
			uncoop[id] = true
		}
		e, err := engine.New(u)
		if err != nil {
			return nil, err
		}
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Seed = 31
		sol, err := e.Solve(&p)
		if err != nil {
			return nil, err
		}
		chosen := pcsa.NewDenseSet(cfg.PoolSize)
		nUncoop := 0
		for _, id := range sol.Sources {
			synth.StreamTuples(cfg, id, u.Sources[id].Cardinality, chosen.Add)
			if uncoop[id] {
				nUncoop++
			}
		}
		rows = append(rows, UncoopRow{
			Fraction:       frac,
			Quality:        sol.Quality,
			TrueCoverage:   float64(chosen.Count()) / universeDistinct,
			UncoopSelected: nUncoop,
			Selected:       len(sol.Sources),
		})
	}
	return rows, nil
}

// DataSimRow compares name-based and data-based matching at one m.
type DataSimRow struct {
	M int
	// NameTrueGAs / DataTrueGAs: distinct concepts recovered.
	NameTrueGAs, DataTrueGAs int
	// NameAttrs / DataAttrs: attributes covered by pure GAs (recall).
	NameAttrs, DataAttrs int
	// NameMissed / DataMissed: concepts present but unrecovered.
	NameMissed, DataMissed int
	// FalseGAs under the data-based measure (must stay 0).
	DataFalse int
}

// DataSim extends Table 1 with the §3 data-based similarity measure: the
// same workload is solved twice, once with the paper's 3-gram name
// measure and once with the value-overlap hybrid built from per-attribute
// signatures. Data evidence recovers concept variants that names cannot
// ("subject"/"genre"), so attribute recall rises without false GAs.
func DataSim(o Options) ([]DataSimRow, error) {
	ms, n := Fig6Ms(o)
	cfg := o.workload(n)
	cfg.WithAttrSignatures = true
	u, truth, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	nameEng, err := engine.New(u)
	if err != nil {
		return nil, err
	}
	measure, err := datasim.New(u, nil)
	if err != nil {
		return nil, err
	}
	dataEng, err := engine.New(u, engine.WithMeasure(measure))
	if err != nil {
		return nil, err
	}

	var rows []DataSimRow
	for _, m := range ms {
		row := DataSimRow{M: m}
		for i, e := range []*engine.Engine{nameEng, dataEng} {
			p := engine.DefaultProblem()
			p.MaxSources = m
			p.MaxEvals = o.evals()
			p.Seed = int64(m)
			sol, err := e.Solve(&p)
			if err != nil {
				return nil, err
			}
			rep := eval.Evaluate(truth, sol.Sources, sol.Schema)
			if i == 0 {
				row.NameTrueGAs, row.NameAttrs, row.NameMissed = rep.TrueGAs, rep.AttrsInTrueGAs, rep.MissedGAs
			} else {
				row.DataTrueGAs, row.DataAttrs, row.DataMissed = rep.TrueGAs, rep.AttrsInTrueGAs, rep.MissedGAs
				row.DataFalse = rep.FalseGAs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ThetaRow is one matching-threshold setting in the θ sensitivity sweep.
type ThetaRow struct {
	Theta float64
	// TrueGAs, Attrs, Missed, False are the Table 1 metrics at this θ.
	TrueGAs, Attrs, Missed, False int
	// Quality is the overall objective.
	Quality float64
}

// ThetaSweep varies the matching threshold θ around the paper's fixed 0.65
// and reports the Table 1 concept metrics: a low θ merges aggressively and
// risks false GAs, a high θ only accepts near-identical names and misses
// concepts. The paper does not evaluate this; it grounds the 0.65 choice.
func ThetaSweep(o Options) ([]ThetaRow, error) {
	_, n := Fig6Ms(o)
	m := 20
	if o.Quick {
		m = 10
	}
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	var rows []ThetaRow
	for _, theta := range []float64{0.4, 0.5, 0.65, 0.8, 0.95} {
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Theta = theta
		p.Seed = 23
		sol, err := s.E.Solve(&p)
		if err != nil {
			return nil, err
		}
		rep := eval.Evaluate(s.Truth, sol.Sources, sol.Schema)
		rows = append(rows, ThetaRow{
			Theta:   theta,
			TrueGAs: rep.TrueGAs,
			Attrs:   rep.AttrsInTrueGAs,
			Missed:  rep.MissedGAs,
			False:   rep.FalseGAs,
			Quality: sol.Quality,
		})
	}
	return rows, nil
}
