package experiments

import "testing"

// TestChurnQuick runs the churn experiment at smoke scale and checks
// its structural invariants; the warm-vs-fresh solution equality is
// asserted inside Churn itself.
func TestChurnQuick(t *testing.T) {
	o := Options{Quick: true, MaxEvals: 300}
	res, err := Churn(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ChurnSizes(o)) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(ChurnSizes(o)))
	}
	for _, r := range res.Rows {
		if r.Batches != res.Steps {
			t.Errorf("U=%d: %d batches, want %d", r.U, r.Batches, res.Steps)
		}
		if r.Mutations < r.Batches {
			t.Errorf("U=%d: %d mutations over %d batches", r.U, r.Mutations, r.Batches)
		}
		if !r.SameSolutions {
			t.Errorf("U=%d: warm and fresh solutions diverged", r.U)
		}
		if r.WarmSeconds <= 0 || r.FreshSeconds <= 0 {
			t.Errorf("U=%d: non-positive timings %+v", r.U, r)
		}
	}
}
