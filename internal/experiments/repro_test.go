package experiments

import (
	"math"
	"sort"
	"sync"
	"testing"

	"ube/internal/engine"
	"ube/internal/model"
	"ube/internal/search"
)

// objectiveTrace records every candidate evaluation of one solve as a
// map from canonical set key to the multiset of observed quality bit
// patterns. With parallel workers the append order per key varies with
// scheduling, so each slice is sorted before comparison — but the keys
// evaluated, how often, and every single quality value must match
// bit-for-bit between reproducible solves.
type objectiveTrace struct {
	mu  sync.Mutex
	byS map[string][]uint64
	opt search.Optimizer
}

func newTrace(inner search.Optimizer) *objectiveTrace {
	return &objectiveTrace{byS: make(map[string][]uint64), opt: inner}
}

func (tr *objectiveTrace) record(key string, q float64) {
	tr.mu.Lock()
	tr.byS[key] = append(tr.byS[key], math.Float64bits(q))
	tr.mu.Unlock()
}

func (tr *objectiveTrace) Name() string { return tr.opt.Name() }

// Optimize implements search.Optimizer: it interposes on both objective
// paths of the problem, then delegates to the wrapped optimizer.
func (tr *objectiveTrace) Optimize(p *search.Problem, seed int64) search.Solution {
	obj := p.Objective
	p.Objective = func(S *model.SourceSet) (float64, bool) {
		q, ok := obj(S)
		tr.record(S.Key(), q)
		return q, ok
	}
	if dobj := p.DeltaObjective; dobj != nil {
		p.DeltaObjective = func(S *model.SourceSet, d search.Delta) (float64, bool) {
			q, ok := dobj(S, d)
			tr.record(S.Key(), q)
			return q, ok
		}
	}
	return tr.opt.Optimize(p, seed)
}

// sorted returns the trace in canonical form.
func (tr *objectiveTrace) sorted() map[string][]uint64 {
	for _, vs := range tr.byS {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	}
	return tr.byS
}

func sameTrace(t *testing.T, label string, a, b map[string][]uint64) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: traces cover %d vs %d candidate sets", label, len(a), len(b))
		return
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Errorf("%s: set %q evaluated in one solve only", label, k)
			return
		}
		if len(va) != len(vb) {
			t.Errorf("%s: set %q evaluated %d vs %d times", label, k, len(va), len(vb))
			return
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Errorf("%s: set %q quality bits diverge: %x vs %x", label, k, va[i], vb[i])
				return
			}
		}
	}
}

func sameSolution(t *testing.T, label string, a, b *engine.Solution) {
	t.Helper()
	if len(a.Sources) != len(b.Sources) {
		t.Fatalf("%s: selected %d vs %d sources", label, len(a.Sources), len(b.Sources))
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Errorf("%s: source sets diverge at %d: %v vs %v", label, i, a.Sources, b.Sources)
			break
		}
	}
	if math.Float64bits(a.Quality) != math.Float64bits(b.Quality) {
		t.Errorf("%s: quality bits %x vs %x (%v vs %v)", label,
			math.Float64bits(a.Quality), math.Float64bits(b.Quality), a.Quality, b.Quality)
	}
	if a.Feasible != b.Feasible {
		t.Errorf("%s: feasible %v vs %v", label, a.Feasible, b.Feasible)
	}
	if a.Evals != b.Evals {
		t.Errorf("%s: evals %d vs %d", label, a.Evals, b.Evals)
	}
	if len(a.Breakdown) != len(b.Breakdown) {
		t.Errorf("%s: breakdown sizes %d vs %d", label, len(a.Breakdown), len(b.Breakdown))
	}
	for k, va := range a.Breakdown {
		if math.Float64bits(va) != math.Float64bits(b.Breakdown[k]) {
			t.Errorf("%s: breakdown[%s] bits diverge: %v vs %v", label, k, va, b.Breakdown[k])
		}
	}
}

// TestFig6CellReproducible pins solve-level reproducibility on the
// Figure 6 m=40 cell (its Quick analog under -short): the same problem,
// seed and Workers=4 must yield byte-identical selected-source sets,
// quality/breakdown bit patterns, evaluation counts and objective traces
// — re-solved on the same warm engine and on a freshly built one.
func TestFig6CellReproducible(t *testing.T) {
	o := Options{Quick: testing.Short()}
	ms, n := Fig6Ms(o)
	m := ms[len(ms)-2] // full scale: m=40; quick: m=12
	setup, err := NewSetup(n, o)
	if err != nil {
		t.Fatal(err)
	}
	p, err := setup.Problem(m, Variants[0], o, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4

	solve := func(e *engine.Engine) (*engine.Solution, map[string][]uint64) {
		tr := newTrace(search.NewTabu())
		pr := p
		pr.Optimizer = tr
		sol, err := e.Solve(&pr)
		if err != nil {
			t.Fatal(err)
		}
		return sol, tr.sorted()
	}

	sol1, trace1 := solve(setup.E)
	sol2, trace2 := solve(setup.E) // warm caches
	sameSolution(t, "warm re-solve", sol1, sol2)
	sameTrace(t, "warm re-solve", trace1, trace2)

	fresh, err := engine.New(setup.U)
	if err != nil {
		t.Fatal(err)
	}
	sol3, trace3 := solve(fresh)
	sameSolution(t, "fresh engine", sol1, sol3)
	sameTrace(t, "fresh engine", trace1, trace3)
}
