package experiments

import (
	"reflect"
	"testing"

	"ube/internal/engine"
	"ube/internal/trace"
)

// TestFig6PruningBitSafe proves the bound-pruning contract on the golden
// Figure 6 m=40 cell (its Quick analog under -short): enabling the
// objective upper bound must leave the solve byte-identical — same
// selected sources, same quality/breakdown bit patterns, same schema,
// same evaluation count (skips are still charged to the budget) — while
// actually skipping candidates (bound.skips > 0 in the solve trace).
// Each solve gets a fresh engine so the match cache starts cold both
// times; only wall-clock fields may differ.
func TestFig6PruningBitSafe(t *testing.T) {
	o := Options{Quick: testing.Short(), MaxEvals: goldenEvals}
	ms, n := Fig6Ms(o)
	m := ms[len(ms)-2] // full scale: the paper's m=40 cell
	setup, err := NewSetup(n, o)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(pruned bool) (*engine.Solution, int64) {
		e, err := engine.New(setup.U)
		if err != nil {
			t.Fatal(err)
		}
		p, err := setup.Problem(m, Variants[0], o, 1)
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = 4
		p.BoundPruning = pruned
		tr := trace.New()
		p.Trace = tr
		sol, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		return sol, tr.Finish().Totals()[trace.CBoundSkips]
	}
	plain, plainSkips := solve(false)
	pruned, skips := solve(true)
	if plainSkips != 0 {
		t.Errorf("bound skips counted with pruning off: %d", plainSkips)
	}
	if skips == 0 {
		t.Error("bound pruning never skipped a candidate on the golden cell")
	}
	sameSolution(t, "pruned vs unpruned", plain, pruned)
	if !reflect.DeepEqual(plain.Schema, pruned.Schema) {
		t.Error("pruning changed the mediated schema")
	}
}
