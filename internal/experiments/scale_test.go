package experiments

import "testing"

// TestScaleQuick runs the scale experiment at its CI scale (one 10³
// universe plus the dense-vs-sparse parity differential) and checks the
// row invariants the committed BENCH_scale.json relies on: the blocking
// index surfaced far fewer candidates than all-pairs, pruning fired, and
// the sparse path solved bit-identically to the dense one.
func TestScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-solve sweep; skipped in -short")
	}
	o := Options{Quick: true, MaxEvals: 2000}
	res, err := Scale(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), len(ScaleSizes(o)); got != want {
		t.Fatalf("%d sweep rows, want %d", got, want)
	}
	for _, r := range res.Rows {
		if r.Vocab < 64 {
			t.Errorf("U=%d: vocabulary of %d names is not a scale workload", r.U, r.Vocab)
		}
		if r.BlockProbes == 0 || r.BlockCandidates == 0 {
			t.Errorf("U=%d: blocking counters did not fire (probes=%d candidates=%d)",
				r.U, r.BlockProbes, r.BlockCandidates)
		}
		if r.BlockCandidates >= r.QuadraticPairs {
			t.Errorf("U=%d: %d candidates is not sublinear against %d all-pairs",
				r.U, r.BlockCandidates, r.QuadraticPairs)
		}
		if r.CandidateSharePct <= 0 || r.CandidateSharePct >= 100 {
			t.Errorf("U=%d: candidate share %v%% out of range", r.U, r.CandidateSharePct)
		}
		if r.BoundSkips == 0 {
			t.Errorf("U=%d: bound pruning never fired", r.U)
		}
		if !r.Feasible || r.Quality <= 0 {
			t.Errorf("U=%d: solve produced quality %v feasible=%v", r.U, r.Quality, r.Feasible)
		}
	}
	if got, want := len(res.Parity), len(scaleParitySizes); got != want {
		t.Fatalf("%d parity rows, want %d", got, want)
	}
	for _, p := range res.Parity {
		if !p.SameSources {
			t.Errorf("U=%d: sparse path selected different sources", p.U)
		}
		//ube:float-exact parity rows document bit-identity of the two paths
		if p.QualityDense != p.QualitySparse || p.GapPct != 0 {
			t.Errorf("U=%d: dense %v vs sparse %v (gap %v%%)", p.U, p.QualityDense, p.QualitySparse, p.GapPct)
		}
	}
}
