package experiments

import (
	"fmt"
	"reflect"
	"time"

	"ube/internal/engine"
	"ube/internal/synth"
	"ube/internal/trace"
)

// This file holds the scale experiment behind BENCH_scale.json: solve
// source selection over internet-scale universes (10³–10⁵ sources, a
// vocabulary that grows with the universe) on the blocking-index sparse
// path, and verify on small universes that the sparse path solves
// exactly like the dense matrix it replaces.

// ScaleRow is one universe size of the sweep. The block.* counters come
// from the solve trace and document the sublinear candidate generation:
// BlockCandidates is what the index surfaced for exact verification,
// QuadraticPairs what the dense path would have scored.
type ScaleRow struct {
	// U is the universe size (number of sources).
	U int `json:"u"`
	// Vocab is the number of distinct normalized attribute names.
	Vocab int `json:"vocab"`
	// QuadraticPairs is vocab·(vocab−1)/2 — the all-pairs baseline the
	// blocking index avoids.
	QuadraticPairs int64 `json:"quadratic_pairs"`
	// BlockProbes, BlockCandidates and BlockPruned are the blocking
	// index's trace counters for the sparse build.
	BlockProbes     int64 `json:"block_probes"`
	BlockCandidates int64 `json:"block_candidates"`
	BlockPruned     int64 `json:"block_pruned"`
	// CandidateSharePct is BlockCandidates as a percentage of
	// QuadraticPairs.
	CandidateSharePct float64 `json:"candidate_share_pct"`
	// ClusterPairs counts ≥θ pairs admitted to clustering agendas across
	// the solve.
	ClusterPairs int64 `json:"cluster_pairs"`
	// BoundSkips counts solver candidates settled by the objective upper
	// bound instead of an exact evaluation (pruning is enabled for the
	// sweep; it never changes the solution).
	BoundSkips int64 `json:"bound_skips"`
	// GenSeconds and SolveSeconds time generation and the solve (the
	// solve includes the lazy sparse build, charged to it by design).
	GenSeconds   float64 `json:"gen_seconds"`
	SolveSeconds float64 `json:"solve_seconds"`
	// Quality, Feasible and Evals describe the solution.
	Quality  float64 `json:"quality"`
	Feasible bool    `json:"feasible"`
	Evals    int     `json:"evals"`
}

// ScaleParityRow is one dense-vs-sparse differential check: the same
// universe and problem solved on both scorer paths. With the default
// exact-recall prefix blocking the two solves are bit-identical, so
// SameSources is true and GapPct is 0.
type ScaleParityRow struct {
	U             int     `json:"u"`
	SameSources   bool    `json:"same_sources"`
	QualityDense  float64 `json:"quality_dense"`
	QualitySparse float64 `json:"quality_sparse"`
	// GapPct is |dense − sparse| / dense × 100 (0 when dense is 0).
	GapPct float64 `json:"gap_pct"`
}

// ScaleResult is the full scale experiment output.
type ScaleResult struct {
	// M is the selection bound used throughout.
	M int `json:"m"`
	// Rows is the sweep over universe sizes, Parity the dense-vs-sparse
	// checks on small universes.
	Rows   []ScaleRow       `json:"rows"`
	Parity []ScaleParityRow `json:"parity"`
}

// ScaleSizes returns the sweep's universe sizes: 10³–10⁵, or just 10³
// under Quick (the CI smoke scale).
func ScaleSizes(o Options) []int {
	if o.Quick {
		return []int{1_000}
	}
	return []int{1_000, 10_000, 100_000}
}

// scaleParitySizes are the universe sizes of the dense-vs-sparse
// differential; small enough that the dense matrix exists to compare
// against.
var scaleParitySizes = []int{40, 700, 1_000}

// Scale runs the scale experiment: the large-universe sweep on the
// sparse path (with bound pruning on, which never changes solutions),
// then the dense-vs-sparse parity differential.
func Scale(o Options) (*ScaleResult, error) {
	const m = 20
	res := &ScaleResult{M: m}
	for _, n := range ScaleSizes(o) {
		cfg := synth.DefaultLargeConfig(n)
		cfg.Seed += o.Seed
		t0 := time.Now()
		u, _, err := synth.GenerateLarge(cfg)
		if err != nil {
			return nil, err
		}
		gen := time.Since(t0).Seconds()
		// Force the sparse path at every size so the whole sweep
		// measures the blocking index (at 10³ the vocabulary would
		// otherwise fit the dense matrix).
		e, err := engine.New(u, engine.WithSparseScores())
		if err != nil {
			return nil, err
		}
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Seed = int64(n)
		p.BoundPruning = true
		tr := trace.New()
		tr.Label = fmt.Sprintf("scale u=%d", n)
		p.Trace = tr
		t1 := time.Now()
		sol, err := e.Solve(&p)
		if err != nil {
			return nil, err
		}
		solve := time.Since(t1).Seconds()
		totals := tr.Finish().Totals()
		vocab := e.VocabularySize()
		quad := int64(vocab) * int64(vocab-1) / 2
		row := ScaleRow{
			U:               n,
			Vocab:           vocab,
			QuadraticPairs:  quad,
			BlockProbes:     totals[trace.CBlockProbes],
			BlockCandidates: totals[trace.CBlockCandidates],
			BlockPruned:     totals[trace.CBlockPruned],
			ClusterPairs:    totals[trace.CClusterPairs],
			BoundSkips:      totals[trace.CBoundSkips],
			GenSeconds:      gen,
			SolveSeconds:    solve,
			Quality:         sol.Quality,
			Feasible:        sol.Feasible,
			Evals:           sol.Evals,
		}
		if quad > 0 {
			row.CandidateSharePct = 100 * float64(row.BlockCandidates) / float64(quad)
		}
		res.Rows = append(res.Rows, row)
	}

	for _, n := range scaleParitySizes {
		cfg := synth.DefaultLargeConfig(n)
		cfg.Seed += o.Seed
		u, _, err := synth.GenerateLarge(cfg)
		if err != nil {
			return nil, err
		}
		dense, err := engine.New(u)
		if err != nil {
			return nil, err
		}
		sparse, err := engine.New(u, engine.WithSparseScores())
		if err != nil {
			return nil, err
		}
		p := engine.DefaultProblem()
		p.MaxSources = m
		p.MaxEvals = o.evals()
		p.Seed = int64(n) * 13
		dsol, err := dense.Solve(&p)
		if err != nil {
			return nil, err
		}
		q := p
		ssol, err := sparse.Solve(&q)
		if err != nil {
			return nil, err
		}
		row := ScaleParityRow{
			U:             n,
			SameSources:   reflect.DeepEqual(dsol.Sources, ssol.Sources),
			QualityDense:  dsol.Quality,
			QualitySparse: ssol.Quality,
		}
		//ube:float-exact guards division by an exact zero only
		if dsol.Quality != 0 {
			row.GapPct = 100 * abs(dsol.Quality-ssol.Quality) / dsol.Quality
		}
		if !row.SameSources && row.GapPct > 1 {
			return nil, fmt.Errorf("scale: sparse solve diverged from dense at U=%d (gap %.2f%%)", n, row.GapPct)
		}
		res.Parity = append(res.Parity, row)
	}
	return res, nil
}
