package experiments

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ube/internal/engine"
	"ube/internal/search"
)

var update = flag.Bool("update", false, "rewrite the golden trace under testdata/golden")

// goldenEvals caps the per-solve budget for the golden cell: large enough
// that tabu search leaves the greedy basin, small enough that the trace
// file stays reviewable and the test stays fast.
const goldenEvals = 400

// renderGoldenTrace serializes one solve in golden form: the solution
// summary (sources, quality and breakdown as exact bit patterns) followed
// by one line per evaluated candidate set — its canonical key and every
// observed quality value, hex bit pattern first so diffs localize a
// drifting evaluation to the exact candidate and bit.
func renderGoldenTrace(m, n int, sol *engine.Solution, trace map[string][]uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig6 cell m=%d n=%d variant=%s seed=1 workers=4 maxEvals=%d\n",
		m, n, Variants[0].Name, goldenEvals)
	fmt.Fprintf(&b, "# regenerate: go test ./internal/experiments -run TestGoldenFig6Trace -update\n")
	fmt.Fprintf(&b, "sources %v\n", sol.Sources)
	fmt.Fprintf(&b, "quality %016x (%.17g) feasible=%v evals=%d\n",
		math.Float64bits(sol.Quality), sol.Quality, sol.Feasible, sol.Evals)
	bks := make([]string, 0, len(sol.Breakdown))
	for k := range sol.Breakdown {
		bks = append(bks, k)
	}
	sort.Strings(bks)
	for _, k := range bks {
		fmt.Fprintf(&b, "breakdown %s %016x (%.17g)\n",
			k, math.Float64bits(sol.Breakdown[k]), sol.Breakdown[k])
	}
	keys := make([]string, 0, len(trace))
	for k := range trace {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		for _, v := range trace[k] {
			fmt.Fprintf(&b, " %016x", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// diffGolden reports the first mismatching lines between the observed and
// golden renderings, with line numbers, so a regression reads as "this
// candidate's quality bits moved" rather than a multi-kilobyte blob.
func diffGolden(got, want string) string {
	const maxShown = 8
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	var b strings.Builder
	if len(g) != len(w) {
		fmt.Fprintf(&b, "line counts diverge: got %d, want %d\n", len(g), len(w))
	}
	shown, total := 0, 0
	for i := 0; i < len(g) || i < len(w); i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl == wl {
			continue
		}
		total++
		if shown < maxShown {
			fmt.Fprintf(&b, "line %d:\n  got:  %s\n  want: %s\n", i+1, clip(gl), clip(wl))
			shown++
		}
	}
	if total > shown {
		fmt.Fprintf(&b, "... and %d more differing lines\n", total-shown)
	}
	return b.String()
}

func clip(s string) string {
	const width = 160
	if len(s) <= width {
		return s
	}
	return s[:width] + fmt.Sprintf("... (%d bytes)", len(s))
}

// TestGoldenFig6Trace pins the Figure 6 m=40 cell's complete per-candidate
// objective trace — every candidate set tabu search evaluated and the
// exact bit pattern of every quality it observed — against a committed
// golden file. TestFig6CellReproducible proves the trace is identical
// across re-solves within one binary; this test extends that guarantee
// across commits: any change to the QEF pipeline, the delta evaluator,
// the matcher or the search neighborhood that perturbs even one candidate
// evaluation fails here with a localized diff. After an intentional
// change, regenerate with -update and review the diff like any other
// golden.
func TestGoldenFig6Trace(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Fig6 cell")
	}
	o := Options{MaxEvals: goldenEvals}
	ms, n := Fig6Ms(o)
	m := ms[len(ms)-2] // the paper's m=40 cell
	setup, err := NewSetup(n, o)
	if err != nil {
		t.Fatal(err)
	}
	p, err := setup.Problem(m, Variants[0], o, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	tr := newTrace(search.NewTabu())
	p.Optimizer = tr
	sol, err := setup.E.Solve(&p)
	if err != nil {
		t.Fatal(err)
	}
	got := renderGoldenTrace(m, n, sol, tr.sorted())

	golden := filepath.Join("testdata", "golden", "fig6_m40_trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("objective trace diverges from %s\n%s", golden, diffGolden(got, string(want)))
	}
}
