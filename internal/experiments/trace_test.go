package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"ube/internal/engine"
	"ube/internal/schemaio"
	"ube/internal/search"
	"ube/internal/trace"
)

// tracedSolve runs one solve of the configuration on a fresh engine
// (the match cache must start cold: a warm cache changes hit/miss
// counts, which are part of the compared payload) and returns the
// canonical trace bytes plus the raw trace.
func tracedSolve(t *testing.T, r traceRun) ([]byte, *trace.Trace) {
	t.Helper()
	_, tr, err := r.Solve()
	if err != nil {
		t.Fatal(err)
	}
	data, err := schemaio.EncodeTraceBytes(tr.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	return data, tr
}

// traceRun is one (setup, problem, optimizer, workers) configuration.
type traceRun struct {
	s       *Setup
	m       int
	o       Options
	newOpt  func() search.Optimizer
	workers int
}

func (r traceRun) Solve() (*engine.Solution, *trace.Trace, error) {
	e, err := engine.New(r.s.U)
	if err != nil {
		return nil, nil, err
	}
	p, err := r.s.Problem(r.m, Variants[0], r.o, 1)
	if err != nil {
		return nil, nil, err
	}
	p.Optimizer = r.newOpt()
	p.Workers = r.workers
	trc := trace.New()
	p.Trace = trc
	sol, err := e.Solve(&p)
	if err != nil {
		return nil, nil, err
	}
	return sol, trc.Finish(), nil
}

// TestTraceCountersDeterministic solves the same problem twice per
// (optimizer, Workers) configuration, each time on a fresh engine, and
// requires byte-identical canonical traces: same span tree, same
// deterministic counter payloads. This is the tracing extension of the
// repro suite's "solves are pure functions of (problem, seed, Workers)"
// contract.
func TestTraceCountersDeterministic(t *testing.T) {
	o := quickOpts()
	s, err := NewSetup(60, o)
	if err != nil {
		t.Fatal(err)
	}
	// A small second universe keeps the exhaustive oracle enumerable.
	tiny, err := NewSetup(14, o)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		s      *Setup
		m      int
		newOpt func() search.Optimizer
	}{
		{"tabu", s, 12, func() search.Optimizer { return search.NewTabu() }},
		{"sls", s, 12, func() search.Optimizer { return search.NewSLS() }},
		{"anneal", s, 12, func() search.Optimizer { return search.NewAnneal() }},
		{"pso", s, 12, func() search.Optimizer { return search.NewPSO() }},
		{"greedy", s, 12, func() search.Optimizer { return search.NewGreedy() }},
		{"exhaustive", tiny, 3, func() search.Optimizer { return search.NewExhaustive() }},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				run := traceRun{s: tc.s, m: tc.m, o: o, newOpt: tc.newOpt, workers: workers}
				first, tr := tracedSolve(t, run)
				second, _ := tracedSolve(t, run)
				if !bytes.Equal(first, second) {
					t.Fatalf("canonical traces differ across reruns:\n--- first\n%s\n--- second\n%s", first, second)
				}
				// Sanity: the trace has the engine's root span and real work.
				if len(tr.Spans) == 0 || tr.Spans[0].Name != "solve" || tr.Spans[0].Parent != -1 {
					t.Fatalf("trace has no solve root span: %+v", tr.Spans)
				}
				totals := tr.Totals()
				if totals[trace.CSearchEvals] == 0 {
					t.Error("trace counted no objective evaluations")
				}
				if totals[trace.CMatchRuns] == 0 {
					t.Error("trace counted no clustering runs")
				}
				if totals[trace.CClusterPops] == 0 {
					t.Error("trace counted no agenda pops")
				}
			})
		}
	}
}

// TestTraceDoesNotChangeResults re-solves one configuration with and
// without a tracer installed and requires identical solutions — tracing
// is a pure side channel.
func TestTraceDoesNotChangeResults(t *testing.T) {
	o := quickOpts()
	s, err := NewSetup(60, o)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(traced bool, workers int) *engine.Solution {
		e, err := engine.New(s.U)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.Problem(12, Variants[0], o, 1)
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = workers
		if traced {
			p.Trace = trace.New()
		}
		sol, err := e.Solve(&p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	for _, workers := range []int{1, 4} {
		plain := solve(false, workers)
		traced := solve(true, workers)
		if fmt.Sprint(plain.Sources) != fmt.Sprint(traced.Sources) {
			t.Errorf("workers=%d: traced solve chose %v, untraced %v", workers, traced.Sources, plain.Sources)
		}
		//ube:float-exact identical solves must produce bit-identical qualities
		if plain.Quality != traced.Quality {
			t.Errorf("workers=%d: traced quality %v != untraced %v", workers, traced.Quality, plain.Quality)
		}
	}
}

// TestTraceOverheadGuard is the regression bound of the ISSUE: the
// enabled-tracer solve must stay within 5% of the disabled one on the
// trace experiment's cell. Timing asserts are noisy, so the guard takes
// the best of a few attempts before failing.
func TestTraceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in -short")
	}
	o := Options{Quick: true, MaxEvals: 2000}
	const limitPct = 5.0
	var last float64
	for attempt := 0; attempt < 3; attempt++ {
		res, err := TraceOverhead(o)
		if err != nil {
			t.Fatal(err)
		}
		if !res.SameSources {
			t.Fatal("traced and untraced solves diverged")
		}
		if res.OverheadPct <= limitPct {
			return
		}
		last = res.OverheadPct
	}
	t.Errorf("enabled-tracer overhead %.2f%% exceeds %.1f%% in every attempt", last, limitPct)
}

// BenchmarkTraceOverhead times the trace experiment's solve with the
// tracer disabled and enabled; allocation counts are reported so the
// disabled path's allocation-identity is visible in benchstat diffs.
func BenchmarkTraceOverhead(b *testing.B) {
	o := quickOpts()
	s, err := NewSetup(60, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		traced bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := engine.New(s.U)
			if err != nil {
				b.Fatal(err)
			}
			p, err := s.Problem(12, Variants[0], o, 1)
			if err != nil {
				b.Fatal(err)
			}
			p.Workers = 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := p
				if mode.traced {
					q.Trace = trace.New()
				}
				if _, err := e.Solve(&q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
