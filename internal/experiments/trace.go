package experiments

import (
	"fmt"
	"reflect"
	"time"

	"ube/internal/engine"
	"ube/internal/trace"
)

// TraceResult is the tracing-overhead experiment: the hardest measured
// Figure 6 cell (the golden m = 40 one) solved repeatedly with tracing
// off and on, each on a fresh engine so the match cache starts cold both
// ways. Seconds are min-of-runs — the standard way to compare a fixed
// workload's cost under measurement noise — and the captured trace's
// span count and counter totals document what the enabled run recorded.
type TraceResult struct {
	// M and N identify the Figure 6 cell (choose M from N sources).
	M int `json:"m"`
	N int `json:"n"`
	// Runs is how many off/on solve pairs were timed.
	Runs int `json:"runs"`
	// DisabledSeconds and EnabledSeconds are min-of-runs solve times.
	DisabledSeconds float64 `json:"disabled_seconds"`
	EnabledSeconds  float64 `json:"enabled_seconds"`
	// OverheadPct is (enabled/disabled − 1) × 100.
	OverheadPct float64 `json:"overhead_pct"`
	// Spans is the captured trace's span count.
	Spans int `json:"spans"`
	// Counters are the captured trace's counter totals by wire name.
	Counters map[string]int64 `json:"counters"`
	// SameSources records that traced and untraced solves chose the
	// identical source set — tracing must never reroute a search.
	SameSources bool `json:"same_sources"`

	// Trace is the last enabled run's captured trace (for JSONL export);
	// not part of the JSON snapshot.
	Trace *trace.Trace `json:"-"`
}

// TraceOverhead measures what solve tracing costs on the golden Figure 6
// cell. Workers is pinned to 1 so the timings measure the instrumented
// sequential path rather than scheduler noise.
func TraceOverhead(o Options) (*TraceResult, error) {
	ms, n := Fig6Ms(o)
	m := ms[len(ms)-2]
	s, err := NewSetup(n, o)
	if err != nil {
		return nil, err
	}
	p, err := s.Problem(m, Variants[0], o, 1)
	if err != nil {
		return nil, err
	}
	p.Workers = 1

	runs := 3
	if o.Quick {
		runs = 2
	}
	res := &TraceResult{M: m, N: n, Runs: runs}
	var plain, traced *engine.Solution
	for r := 0; r < runs; r++ {
		for _, enabled := range []bool{false, true} {
			// A fresh engine per solve: the match cache must start cold
			// both ways or the second pipeline would time warm hits.
			e, err := engine.New(s.U)
			if err != nil {
				return nil, err
			}
			q := p
			var trc *trace.Tracer
			if enabled {
				trc = trace.New()
				trc.Label = fmt.Sprintf("fig6 m=%d n=%d", m, n)
				q.Trace = trc
			}
			start := time.Now()
			sol, err := e.Solve(&q)
			if err != nil {
				return nil, err
			}
			sec := time.Since(start).Seconds()
			if enabled {
				//ube:float-exact zero is the not-yet-measured sentinel, never a computed value
				if res.EnabledSeconds == 0 || sec < res.EnabledSeconds {
					res.EnabledSeconds = sec
				}
				traced = sol
				res.Trace = trc.Finish()
			} else {
				//ube:float-exact zero is the not-yet-measured sentinel, never a computed value
				if res.DisabledSeconds == 0 || sec < res.DisabledSeconds {
					res.DisabledSeconds = sec
				}
				plain = sol
			}
		}
	}
	res.OverheadPct = (res.EnabledSeconds/res.DisabledSeconds - 1) * 100
	res.Spans = len(res.Trace.Spans)
	totals := res.Trace.Totals()
	res.Counters = totals.Map()
	res.SameSources = reflect.DeepEqual(plain.Sources, traced.Sources)
	return res, nil
}
