package experiments

import "testing"

func TestIncrementalMsScales(t *testing.T) {
	if ms, n := IncrementalMs(Options{Quick: true}); len(ms) != 2 || n != 60 {
		t.Errorf("quick cells = %v at n=%d", ms, n)
	}
	ms, n := IncrementalMs(Options{})
	if len(ms) != 2 || ms[0] != 40 || ms[1] != 50 || n != 200 {
		t.Errorf("full cells = %v at n=%d, want [40 50] at 200", ms, n)
	}
}

// TestIncrementalQuick runs the pipeline ablation at quick scale and
// checks its core claim: the incremental path changes cost, never the
// chosen sources.
func TestIncrementalQuick(t *testing.T) {
	o := quickOpts()
	rows, err := Incremental(o)
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := IncrementalMs(o)
	if len(rows) != len(ms) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ms))
	}
	for i, row := range rows {
		if row.M != ms[i] {
			t.Errorf("row %d: m=%d, want %d", i, row.M, ms[i])
		}
		if !row.SameSources {
			t.Errorf("m=%d: pipelines chose different sources", row.M)
		}
		for _, name := range IncrementalPipelines {
			if row.Seconds[name] <= 0 {
				t.Errorf("m=%d: %s recorded no time", row.M, name)
			}
			//ube:float-exact both pipelines evaluate the identical objective; bit-equality is the ablation's contract
			if row.Quality[name] != row.Quality[IncrementalPipelines[0]] {
				t.Errorf("m=%d: %s quality %v diverges from %v",
					row.M, name, row.Quality[name], row.Quality[IncrementalPipelines[0]])
			}
		}
		if row.Speedup <= 0 {
			t.Errorf("m=%d: speedup %v", row.M, row.Speedup)
		}
	}
}
