// Package diq executes queries over a solved data integration system —
// the artifact µBE exists to define. The paper's introduction motivates
// source selection with exactly these runtime costs: "the costs to
// retrieve data from the source while executing queries, map this data to
// the global mediated schema, and resolve any inconsistencies with data
// retrieved from other sources." This package implements that pipeline:
// fan a query out to the selected sources, rewrite each source tuple into
// the mediated schema through the GA mapping, evaluate predicates over
// mediated attributes, and eliminate the duplicates that redundant sources
// return.
//
// Mediated-schema attributes are unnamed sets of source attributes
// (paper §2.2), so queries address them by GA index; Result.Columns carry
// human-readable representative labels.
package diq

import (
	"fmt"
	"sort"
	"strings"

	"ube/internal/model"
)

// A Provider supplies the data of one source at query time. The engine
// never needs providers — only signatures — so they appear first here, at
// execution time.
type Provider interface {
	// Scan iterates the source's tuples, each with one value per
	// attribute of the source's schema, stopping early if yield
	// returns false.
	Scan(yield func(tuple []string) bool) error
}

// MemProvider is an in-memory Provider for examples and tests.
type MemProvider struct {
	// Rows holds the tuples; each must have one value per attribute of
	// the source's schema.
	Rows [][]string
}

// Scan implements Provider.
func (p *MemProvider) Scan(yield func(tuple []string) bool) error {
	for _, row := range p.Rows {
		if !yield(row) {
			return nil
		}
	}
	return nil
}

// System is a solved data integration system: the universe, the selected
// sources and the mediated schema over them.
type System struct {
	u       *model.Universe
	sources []int
	schema  *model.MediatedSchema
	// gaAttr[g][sourceID] is the attribute index of source sourceID in
	// GA g, or -1 when the source does not participate.
	gaAttr [][]int
}

// NewSystem validates and indexes a solved integration system.
func NewSystem(u *model.Universe, sources []int, schema *model.MediatedSchema) (*System, error) {
	if schema == nil {
		return nil, fmt.Errorf("diq: nil mediated schema")
	}
	if !schema.Valid() {
		return nil, fmt.Errorf("diq: invalid mediated schema")
	}
	seen := make(map[int]bool, len(sources))
	for _, id := range sources {
		if id < 0 || id >= u.N() {
			return nil, fmt.Errorf("diq: source %d out of range", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("diq: duplicate source %d", id)
		}
		seen[id] = true
	}
	for _, g := range schema.GAs {
		for _, r := range g {
			if !u.ValidRef(r) {
				return nil, fmt.Errorf("diq: schema references nonexistent attribute %+v", r)
			}
			if !seen[r.Source] {
				return nil, fmt.Errorf("diq: schema references source %d outside the system", r.Source)
			}
		}
	}
	sys := &System{
		u:       u,
		sources: append([]int(nil), sources...),
		schema:  schema.Clone(),
		gaAttr:  make([][]int, len(schema.GAs)),
	}
	sort.Ints(sys.sources)
	for gi, g := range schema.GAs {
		idx := make([]int, u.N())
		for i := range idx {
			idx[i] = -1
		}
		for _, r := range g {
			idx[r.Source] = r.Attr
		}
		sys.gaAttr[gi] = idx
	}
	return sys, nil
}

// NumGAs returns the number of mediated-schema attributes.
func (s *System) NumGAs() int { return len(s.schema.GAs) }

// Sources returns the system's source IDs in ascending order.
func (s *System) Sources() []int { return append([]int(nil), s.sources...) }

// GALabel returns a human-readable label for mediated attribute g: the
// most common attribute name within the GA (ties broken alphabetically).
func (s *System) GALabel(g int) string {
	counts := make(map[string]int)
	for _, r := range s.schema.GAs[g] {
		counts[s.u.AttrName(r)]++
	}
	best, bestN := "", 0
	for name, n := range counts {
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	return best
}

// A Pred is an equality predicate on a mediated attribute. A source that
// does not participate in the predicate's GA cannot produce a matching
// value and contributes no rows.
type Pred struct {
	GA    int
	Value string
}

// Query is a selection query over the mediated schema.
type Query struct {
	// Select lists the GA indices to project, in output order. Empty
	// means all GAs in schema order.
	Select []int
	// Where is a conjunction of equality predicates.
	Where []Pred
	// Distinct eliminates duplicate projected rows across sources —
	// the §1 "resolve inconsistencies" step for overlapping sources.
	Distinct bool
	// Limit caps the number of result rows (0 = unlimited).
	Limit int
}

// Null is the rendering of a mediated attribute at a source that does not
// expose it.
const Null = ""

// Stats accounts for the §1 execution costs.
type Stats struct {
	// SourcesQueried and SourcesSkipped partition the system's sources:
	// skipped ones had no provider or exposed none of the projected or
	// filtered attributes.
	SourcesQueried int
	SourcesSkipped []int
	// TuplesFetched counts tuples scanned from the sources;
	// TuplesMatched counts those passing the predicates.
	TuplesFetched int64
	TuplesMatched int64
	// DuplicatesRemoved counts matched rows dropped by Distinct.
	DuplicatesRemoved int64
}

// Result is a query's output.
type Result struct {
	// Columns labels the projected mediated attributes.
	Columns []string
	// Rows holds the projected tuples; Null marks attributes the
	// producing source does not expose.
	Rows [][]string
	// Stats accounts for the execution.
	Stats Stats
}

// Execute runs q against the system using the given per-source providers.
// Sources without providers are skipped (and reported in Stats): a live
// deployment may not reach every source on every query.
func Execute(sys *System, providers map[int]Provider, q Query) (*Result, error) {
	sel := q.Select
	if len(sel) == 0 {
		sel = make([]int, sys.NumGAs())
		for i := range sel {
			sel[i] = i
		}
	}
	for _, g := range sel {
		if g < 0 || g >= sys.NumGAs() {
			return nil, fmt.Errorf("diq: projected GA %d out of range [0,%d)", g, sys.NumGAs())
		}
	}
	for _, p := range q.Where {
		if p.GA < 0 || p.GA >= sys.NumGAs() {
			return nil, fmt.Errorf("diq: predicate GA %d out of range [0,%d)", p.GA, sys.NumGAs())
		}
	}
	if q.Limit < 0 {
		return nil, fmt.Errorf("diq: negative limit")
	}

	res := &Result{Columns: make([]string, len(sel))}
	for i, g := range sel {
		res.Columns[i] = sys.GALabel(g)
	}
	seen := make(map[string]struct{})

	for _, id := range sys.sources {
		prov := providers[id]
		if prov == nil || !sys.relevant(id, sel, q.Where) {
			res.Stats.SourcesSkipped = append(res.Stats.SourcesSkipped, id)
			continue
		}
		res.Stats.SourcesQueried++
		nAttrs := len(sys.u.Source(id).Attributes)
		var scanErr error
		err := prov.Scan(func(tuple []string) bool {
			res.Stats.TuplesFetched++
			if len(tuple) != nAttrs {
				scanErr = fmt.Errorf("diq: source %d produced a %d-field tuple for a %d-attribute schema", id, len(tuple), nAttrs)
				return false
			}
			// Predicates over mediated attributes.
			for _, p := range q.Where {
				a := sys.gaAttr[p.GA][id]
				if a < 0 || tuple[a] != p.Value {
					return true
				}
			}
			res.Stats.TuplesMatched++
			// Map to the mediated schema.
			row := make([]string, len(sel))
			for i, g := range sel {
				if a := sys.gaAttr[g][id]; a >= 0 {
					row[i] = tuple[a]
				} else {
					row[i] = Null
				}
			}
			if q.Distinct {
				key := strings.Join(row, "\x00")
				if _, dup := seen[key]; dup {
					res.Stats.DuplicatesRemoved++
					return true
				}
				seen[key] = struct{}{}
			}
			res.Rows = append(res.Rows, row)
			return q.Limit == 0 || len(res.Rows) < q.Limit
		})
		if scanErr != nil {
			return nil, scanErr
		}
		if err != nil {
			return nil, fmt.Errorf("diq: scanning source %d: %w", id, err)
		}
		if q.Limit > 0 && len(res.Rows) >= q.Limit {
			break
		}
	}
	return res, nil
}

// relevant reports whether source id can contribute to the query: it must
// expose at least one projected attribute, and every predicate's GA (a
// source without the filtered attribute can never match).
func (sys *System) relevant(id int, sel []int, where []Pred) bool {
	for _, p := range where {
		if sys.gaAttr[p.GA][id] < 0 {
			return false
		}
	}
	for _, g := range sel {
		if sys.gaAttr[g][id] >= 0 {
			return true
		}
	}
	return false
}
