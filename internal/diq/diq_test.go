package diq

import (
	"errors"
	"reflect"
	"testing"

	"ube/internal/model"
)

// bookSystem builds a 3-source integration system:
//
//	source 0: title, author, price — rows about books A, B
//	source 1: book title, price    — rows about books B, C (overlaps on B)
//	source 2: author, format       — no title attribute at all
func bookSystem(t *testing.T) (*System, map[int]Provider) {
	t.Helper()
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "s0", Cardinality: 2, Attributes: []string{"title", "author", "price"}},
		{ID: 1, Name: "s1", Cardinality: 2, Attributes: []string{"book title", "price"}},
		{ID: 2, Name: "s2", Cardinality: 2, Attributes: []string{"author", "format"}},
	}}
	schema := &model.MediatedSchema{GAs: []model.GA{
		model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 1, Attr: 0}), // title
		model.NewGA(model.AttrRef{Source: 0, Attr: 1}, model.AttrRef{Source: 2, Attr: 0}), // author
		model.NewGA(model.AttrRef{Source: 0, Attr: 2}, model.AttrRef{Source: 1, Attr: 1}), // price
	}}
	sys, err := NewSystem(u, []int{0, 1, 2}, schema)
	if err != nil {
		t.Fatal(err)
	}
	providers := map[int]Provider{
		0: &MemProvider{Rows: [][]string{
			{"book a", "alice", "10"},
			{"book b", "bob", "20"},
		}},
		1: &MemProvider{Rows: [][]string{
			{"book b", "20"}, // duplicate of s0's projection on (title, price)
			{"book c", "30"},
		}},
		2: &MemProvider{Rows: [][]string{
			{"carol", "paperback"},
			{"alice", "hardcover"},
		}},
	}
	return sys, providers
}

func TestSystemValidation(t *testing.T) {
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "s0", Cardinality: 1, Attributes: []string{"a"}},
		{ID: 1, Name: "s1", Cardinality: 1, Attributes: []string{"a"}},
	}}
	good := &model.MediatedSchema{GAs: []model.GA{
		model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 1, Attr: 0}),
	}}
	if _, err := NewSystem(u, []int{0, 1}, good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		sources []int
		schema  *model.MediatedSchema
	}{
		{"nil schema", []int{0, 1}, nil},
		{"invalid schema", []int{0, 1}, &model.MediatedSchema{GAs: []model.GA{{model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 0, Attr: 0}}}}},
		{"source out of range", []int{0, 5}, good},
		{"duplicate source", []int{0, 0}, good},
		{"schema beyond sources", []int{0}, good},
		{"dangling ref", []int{0, 1}, &model.MediatedSchema{GAs: []model.GA{
			model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 1, Attr: 9}),
		}}},
	}
	for _, c := range cases {
		if _, err := NewSystem(u, c.sources, c.schema); err == nil {
			t.Errorf("%s: NewSystem should fail", c.name)
		}
	}
}

func TestExecuteProjectionAndMapping(t *testing.T) {
	sys, prov := bookSystem(t)
	res, err := Execute(sys, prov, Query{Select: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	// "title" and "book title" tie at one occurrence each; the label
	// tiebreak is alphabetical.
	if !reflect.DeepEqual(res.Columns, []string{"book title", "price"}) {
		t.Errorf("columns = %v", res.Columns)
	}
	// Source 2 has neither title nor price → skipped entirely.
	if res.Stats.SourcesQueried != 2 || !reflect.DeepEqual(res.Stats.SourcesSkipped, []int{2}) {
		t.Errorf("stats = %+v", res.Stats)
	}
	want := [][]string{
		{"book a", "10"},
		{"book b", "20"},
		{"book b", "20"},
		{"book c", "30"},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.TuplesFetched != 4 || res.Stats.TuplesMatched != 4 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestExecuteDistinct(t *testing.T) {
	sys, prov := bookSystem(t)
	res, err := Execute(sys, prov, Query{Select: []int{0, 2}, Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
	if res.Stats.DuplicatesRemoved != 1 {
		t.Errorf("duplicates removed = %d, want 1", res.Stats.DuplicatesRemoved)
	}
}

func TestExecuteNullForMissingAttributes(t *testing.T) {
	sys, prov := bookSystem(t)
	// Project all three GAs: source 1 has no author, source 2 no title
	// or price.
	res, err := Execute(sys, prov, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Errorf("columns = %v", res.Columns)
	}
	// Source 1's "book c" row has Null author.
	found := false
	for _, row := range res.Rows {
		if row[0] == "book c" {
			found = true
			if row[1] != Null || row[2] != "30" {
				t.Errorf("book c row = %v", row)
			}
		}
	}
	if !found {
		t.Error("book c row missing")
	}
	// Source 2 contributes author-only rows.
	carol := false
	for _, row := range res.Rows {
		if row[1] == "carol" && row[0] == Null && row[2] == Null {
			carol = true
		}
	}
	if !carol {
		t.Errorf("source 2 rows missing or mismapped: %v", res.Rows)
	}
}

func TestExecutePredicates(t *testing.T) {
	sys, prov := bookSystem(t)
	res, err := Execute(sys, prov, Query{
		Select: []int{0},
		Where:  []Pred{{GA: 2, Value: "20"}}, // price = 20
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sources 0 and 1 each have one price-20 book (the same one);
	// source 2 has no price attribute → filtered out as irrelevant.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if row[0] != "book b" {
			t.Errorf("unexpected row %v", row)
		}
	}
	if res.Stats.TuplesMatched != 2 || res.Stats.TuplesFetched != 4 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if !reflect.DeepEqual(res.Stats.SourcesSkipped, []int{2}) {
		t.Errorf("skipped = %v", res.Stats.SourcesSkipped)
	}
	// Conjunction: price = 20 AND author = bob only matches at source 0.
	res, err = Execute(sys, prov, Query{
		Select: []int{0},
		Where:  []Pred{{GA: 2, Value: "20"}, {GA: 1, Value: "bob"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "book b" {
		t.Errorf("conjunction rows = %v", res.Rows)
	}
}

func TestExecuteLimit(t *testing.T) {
	sys, prov := bookSystem(t)
	res, err := Execute(sys, prov, Query{Select: []int{0}, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("limit ignored: %d rows", len(res.Rows))
	}
	// Early stop keeps fetch counts low: source 1 is never scanned.
	if res.Stats.TuplesFetched > 2 {
		t.Errorf("limit did not stop the scan early: %+v", res.Stats)
	}
}

func TestExecuteMissingProviders(t *testing.T) {
	sys, prov := bookSystem(t)
	delete(prov, 1)
	res, err := Execute(sys, prov, Query{Select: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SourcesQueried != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	for _, row := range res.Rows {
		if row[0] == "book c" {
			t.Error("row from a provider-less source")
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	sys, prov := bookSystem(t)
	if _, err := Execute(sys, prov, Query{Select: []int{9}}); err == nil {
		t.Error("out-of-range projection accepted")
	}
	if _, err := Execute(sys, prov, Query{Where: []Pred{{GA: -1}}}); err == nil {
		t.Error("out-of-range predicate accepted")
	}
	if _, err := Execute(sys, prov, Query{Limit: -1}); err == nil {
		t.Error("negative limit accepted")
	}
	// A provider producing malformed tuples is reported.
	prov[0] = &MemProvider{Rows: [][]string{{"only one field"}}}
	if _, err := Execute(sys, prov, Query{Select: []int{0}}); err == nil {
		t.Error("malformed tuple accepted")
	}
}

// failingProvider errors mid-scan.
type failingProvider struct{}

func (failingProvider) Scan(func([]string) bool) error {
	return errors.New("connection reset")
}

func TestExecuteProviderFailure(t *testing.T) {
	sys, prov := bookSystem(t)
	prov[0] = failingProvider{}
	if _, err := Execute(sys, prov, Query{Select: []int{0}}); err == nil {
		t.Error("provider failure swallowed")
	}
}

func TestGALabel(t *testing.T) {
	sys, _ := bookSystem(t)
	if got := sys.GALabel(0); got != "book title" && got != "title" {
		t.Errorf("GALabel(0) = %q", got)
	}
	if got := sys.GALabel(1); got != "author" {
		t.Errorf("GALabel(1) = %q", got)
	}
	if sys.NumGAs() != 3 {
		t.Errorf("NumGAs = %d", sys.NumGAs())
	}
	if !reflect.DeepEqual(sys.Sources(), []int{0, 1, 2}) {
		t.Errorf("Sources = %v", sys.Sources())
	}
}

func TestExecuteAggregate(t *testing.T) {
	sys, prov := bookSystem(t)
	// Titles per author. Source 0 has (a: alice, b: bob); source 1 has
	// no author attribute → its rows are skipped; source 2 has authors
	// but no title → skipped rows too (Null count attr).
	groups, stats, err := ExecuteAggregate(sys, prov, AggQuery{GroupBy: 1, Count: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	for _, g := range groups {
		if g.DistinctCount != 1 {
			t.Errorf("group %q count %d, want 1", g.Key, g.DistinctCount)
		}
	}
	if stats.TuplesFetched == 0 {
		t.Error("stats not propagated")
	}
	// Predicates narrow the groups.
	groups, _, err = ExecuteAggregate(sys, prov, AggQuery{
		GroupBy: 1, Count: 0,
		Where: []Pred{{GA: 2, Value: "20"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].Key != "bob" {
		t.Errorf("filtered groups = %+v", groups)
	}
	// Same GA for both roles is rejected.
	if _, _, err := ExecuteAggregate(sys, prov, AggQuery{GroupBy: 1, Count: 1}); err == nil {
		t.Error("GroupBy == Count accepted")
	}
	// Bad GA index propagates the Execute error.
	if _, _, err := ExecuteAggregate(sys, prov, AggQuery{GroupBy: 9, Count: 0}); err == nil {
		t.Error("bad GroupBy accepted")
	}
}

func TestExecuteAggregateCrossSourceDedup(t *testing.T) {
	// The same (author, title) pair at two sources counts once.
	u := &model.Universe{Sources: []model.Source{
		{ID: 0, Name: "a", Cardinality: 2, Attributes: []string{"title", "author"}},
		{ID: 1, Name: "b", Cardinality: 2, Attributes: []string{"title", "author"}},
	}}
	schema := &model.MediatedSchema{GAs: []model.GA{
		model.NewGA(model.AttrRef{Source: 0, Attr: 0}, model.AttrRef{Source: 1, Attr: 0}),
		model.NewGA(model.AttrRef{Source: 0, Attr: 1}, model.AttrRef{Source: 1, Attr: 1}),
	}}
	sys, err := NewSystem(u, []int{0, 1}, schema)
	if err != nil {
		t.Fatal(err)
	}
	prov := map[int]Provider{
		0: &MemProvider{Rows: [][]string{{"t1", "alice"}, {"t2", "alice"}}},
		1: &MemProvider{Rows: [][]string{{"t1", "alice"}, {"t3", "alice"}}},
	}
	groups, _, err := ExecuteAggregate(sys, prov, AggQuery{GroupBy: 1, Count: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || groups[0].DistinctCount != 3 {
		t.Errorf("want alice→3 distinct titles, got %+v", groups)
	}
}
