package diq

import (
	"fmt"
	"sort"
)

// AggQuery is a grouped count over the mediated schema: for each distinct
// value of the GroupBy attribute, how many distinct values of the Count
// attribute the integrated sources hold. "How many titles per author
// across the selected stores" is AggQuery{GroupBy: author, Count: title}.
type AggQuery struct {
	// GroupBy is the mediated attribute whose values key the groups.
	GroupBy int
	// Count is the mediated attribute whose distinct values are counted
	// per group.
	Count int
	// Where filters the underlying tuples before grouping.
	Where []Pred
}

// GroupRow is one aggregation result group.
type GroupRow struct {
	// Key is the GroupBy attribute's value.
	Key string
	// DistinctCount is the number of distinct Count values in the group,
	// after cross-source duplicate elimination.
	DistinctCount int64
}

// ExecuteAggregate runs a grouped distinct count. Tuples whose GroupBy or
// Count attribute is Null (the producing source does not expose it) are
// skipped: they can neither key a group nor contribute a counted value.
// Groups are returned in descending count order (ties by key).
func ExecuteAggregate(sys *System, providers map[int]Provider, q AggQuery) ([]GroupRow, Stats, error) {
	if q.GroupBy == q.Count {
		return nil, Stats{}, fmt.Errorf("diq: GroupBy and Count must differ")
	}
	res, err := Execute(sys, providers, Query{
		Select:   []int{q.GroupBy, q.Count},
		Where:    q.Where,
		Distinct: true, // cross-source duplicates count once
	})
	if err != nil {
		return nil, Stats{}, err
	}
	counts := make(map[string]int64)
	for _, row := range res.Rows {
		if row[0] == Null || row[1] == Null {
			continue
		}
		counts[row[0]]++
	}
	groups := make([]GroupRow, 0, len(counts))
	for k, c := range counts {
		groups = append(groups, GroupRow{Key: k, DistinctCount: c})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].DistinctCount != groups[j].DistinctCount {
			return groups[i].DistinctCount > groups[j].DistinctCount
		}
		return groups[i].Key < groups[j].Key
	})
	return groups, res.Stats, nil
}
