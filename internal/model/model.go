// Package model defines the µBE data model: data sources with relational
// schemas, data characteristics and non-functional source characteristics;
// global attributes (GAs); mediated schemas; and the user-supplied
// constraints that guide source selection and schema mediation (paper §2).
package model

import (
	"fmt"
	"sort"

	"ube/internal/pcsa"
)

// An AttrRef identifies one attribute in a universe: attribute Attr (an
// index into the source's schema) of source Source (the source's ID).
type AttrRef struct {
	Source int `json:"source"`
	Attr   int `json:"attr"`
}

// Less orders AttrRefs lexicographically by (Source, Attr).
func (r AttrRef) Less(o AttrRef) bool {
	if r.Source != o.Source {
		return r.Source < o.Source
	}
	return r.Attr < o.Attr
}

// A Source is a data source as µBE sees it (§2.1): a schema (a list of
// attribute names), the cardinality of its data, an optional PCSA signature
// of that data, and a set of named non-functional characteristics such as
// mean time to failure, latency or fees.
type Source struct {
	// ID is the source's index in its universe; Universe.Validate
	// enforces that IDs are dense and in order.
	ID int `json:"id"`
	// Name is a human-readable label, e.g. the site hostname.
	Name string `json:"name"`
	// Attributes is the source's schema: the attribute names exposed by
	// its query interface.
	Attributes []string `json:"attributes"`
	// Cardinality is the number of tuples at the source, as reported by
	// the source itself.
	Cardinality int64 `json:"cardinality"`
	// Signature is the PCSA hash signature of the source's tuples, used
	// to estimate cardinalities of unions. A nil signature marks an
	// uncooperative source (§4): it is excluded from coverage and
	// redundancy computations but can still be selected.
	Signature *pcsa.Sketch `json:"signature,omitempty"`
	// AttrSignatures optionally holds one PCSA signature per attribute
	// (parallel to Attributes) over that attribute's value set. They
	// power data-based attribute similarity (§3 allows Match to use
	// schema-based or data-based measures): the estimated Jaccard
	// overlap of two attributes' value sets. Nil means the source does
	// not export value signatures.
	AttrSignatures []*pcsa.Sketch `json:"attrSignatures,omitempty"`
	// Characteristics holds per-source scalar characteristics by name
	// (e.g. "mttf", "latency", "fee"). Values are positive reals of any
	// magnitude (§5).
	Characteristics map[string]float64 `json:"characteristics,omitempty"`
}

// Characteristic returns the named characteristic and whether the source
// defines it.
func (s *Source) Characteristic(name string) (float64, bool) {
	v, ok := s.Characteristics[name]
	return v, ok
}

// Cooperative reports whether the source provided a data signature.
func (s *Source) Cooperative() bool { return s.Signature != nil }

// A Universe is the set of all data sources from which µBE chooses a
// solution (§2.1). The paper targets hundreds to a few thousands of
// sources.
type Universe struct {
	Sources []Source `json:"sources"`
}

// N returns the number of sources in the universe.
func (u *Universe) N() int { return len(u.Sources) }

// Source returns the source with the given ID.
func (u *Universe) Source(id int) *Source { return &u.Sources[id] }

// AttrName returns the name of the referenced attribute.
func (u *Universe) AttrName(r AttrRef) string {
	return u.Sources[r.Source].Attributes[r.Attr]
}

// ValidRef reports whether r points at an existing attribute.
func (u *Universe) ValidRef(r AttrRef) bool {
	return r.Source >= 0 && r.Source < len(u.Sources) &&
		r.Attr >= 0 && r.Attr < len(u.Sources[r.Source].Attributes)
}

// TotalCardinality returns Σ_{t∈U} |t|, the denominator of the Card QEF.
func (u *Universe) TotalCardinality() int64 {
	var sum int64
	for i := range u.Sources {
		sum += u.Sources[i].Cardinality
	}
	return sum
}

// NumAttributes returns the total number of attributes across all schemas.
func (u *Universe) NumAttributes() int {
	n := 0
	for i := range u.Sources {
		n += len(u.Sources[i].Attributes)
	}
	return n
}

// Validate checks structural invariants: dense in-order IDs, non-empty
// schemas, non-negative cardinalities, and pairwise-compatible signatures.
func (u *Universe) Validate() error {
	var sig, attrSig *pcsa.Sketch
	for i := range u.Sources {
		s := &u.Sources[i]
		if s.ID != i {
			return fmt.Errorf("model: source %d has ID %d; IDs must be dense and in order", i, s.ID)
		}
		if len(s.Attributes) == 0 {
			return fmt.Errorf("model: source %d (%s) has an empty schema", i, s.Name)
		}
		if s.Cardinality < 0 {
			return fmt.Errorf("model: source %d (%s) has negative cardinality", i, s.Name)
		}
		for _, c := range s.Characteristics {
			if c < 0 {
				return fmt.Errorf("model: source %d (%s) has a negative characteristic; §5 requires positive reals", i, s.Name)
			}
		}
		if s.Signature != nil {
			if sig == nil {
				sig = s.Signature
			} else if !sig.Compatible(s.Signature) {
				return fmt.Errorf("model: source %d (%s) signature parameters differ from earlier sources", i, s.Name)
			}
		}
		if s.AttrSignatures != nil {
			if len(s.AttrSignatures) != len(s.Attributes) {
				return fmt.Errorf("model: source %d (%s) has %d attribute signatures for %d attributes", i, s.Name, len(s.AttrSignatures), len(s.Attributes))
			}
			for a, as := range s.AttrSignatures {
				if as == nil {
					return fmt.Errorf("model: source %d (%s) attribute %d has a nil signature; omit AttrSignatures entirely instead", i, s.Name, a)
				}
				if attrSig == nil {
					attrSig = as
				} else if !attrSig.Compatible(as) {
					return fmt.Errorf("model: source %d (%s) attribute signature parameters differ from earlier sources", i, s.Name)
				}
			}
		}
	}
	return nil
}

// A GA (Global Attribute) is an attribute of the mediated schema: a set of
// attributes from different sources that match each other and map to the
// same (unnamed) mediated-schema attribute. Definition 1: a GA is valid iff
// it is non-empty and contains at most one attribute from any source.
//
// A GA is stored as a sorted, duplicate-free slice of AttrRefs; use NewGA
// to construct one in canonical form.
type GA []AttrRef

// NewGA returns the canonical (sorted, deduplicated) GA over refs.
func NewGA(refs ...AttrRef) GA {
	g := make(GA, len(refs))
	copy(g, refs)
	sort.Slice(g, func(i, j int) bool { return g[i].Less(g[j]) })
	out := g[:0]
	for i, r := range g {
		if i == 0 || g[i-1] != r {
			out = append(out, r)
		}
	}
	return out
}

// Valid implements Definition 1: g ≠ ∅ and no two attributes of g come
// from the same source.
func (g GA) Valid() bool {
	if len(g) == 0 {
		return false
	}
	for i := 1; i < len(g); i++ {
		if !g[i-1].Less(g[i]) {
			return false // unsorted or duplicate: not canonical
		}
		if g[i-1].Source == g[i].Source {
			return false
		}
	}
	return true
}

// Contains reports whether g contains the given attribute reference.
func (g GA) Contains(r AttrRef) bool {
	i := sort.Search(len(g), func(i int) bool { return !g[i].Less(r) })
	return i < len(g) && g[i] == r
}

// ContainsAll reports whether every attribute of h is in g (h ⊆ g).
func (g GA) ContainsAll(h GA) bool {
	for _, r := range h {
		if !g.Contains(r) {
			return false
		}
	}
	return true
}

// Intersects reports whether g and h share any attribute.
func (g GA) Intersects(h GA) bool {
	i, j := 0, 0
	for i < len(g) && j < len(h) {
		switch {
		case g[i] == h[j]:
			return true
		case g[i].Less(h[j]):
			i++
		default:
			j++
		}
	}
	return false
}

// TouchesSource reports whether g contains an attribute of source id
// (g ∩ s ≠ ∅ in Definition 2).
func (g GA) TouchesSource(id int) bool {
	for _, r := range g {
		if r.Source == id {
			return true
		}
		if r.Source > id {
			return false // sorted by source
		}
	}
	return false
}

// Sources returns the sorted IDs of the sources g draws attributes from.
// For a valid GA this has the same length as g.
func (g GA) Sources() []int {
	ids := make([]int, 0, len(g))
	for _, r := range g {
		if len(ids) == 0 || ids[len(ids)-1] != r.Source {
			ids = append(ids, r.Source)
		}
	}
	return ids
}

// Merge returns the canonical union of g and h.
func (g GA) Merge(h GA) GA {
	out := make(GA, 0, len(g)+len(h))
	out = append(out, g...)
	out = append(out, h...)
	return NewGA(out...)
}

// Equal reports whether two canonical GAs contain the same attributes.
func (g GA) Equal(h GA) bool {
	if len(g) != len(h) {
		return false
	}
	for i := range g {
		if g[i] != h[i] {
			return false
		}
	}
	return true
}

// A MediatedSchema is a set of GAs (Definition 2). µBE generates mediated
// schemas automatically; the GAs are not named.
type MediatedSchema struct {
	GAs []GA `json:"gas"`
}

// Valid reports whether every GA is valid and the GAs are pairwise
// disjoint (the first condition of Definition 2: an attribute cannot
// express two different concepts).
func (m *MediatedSchema) Valid() bool {
	seen := make(map[AttrRef]struct{})
	for _, g := range m.GAs {
		if !g.Valid() {
			return false
		}
		for _, r := range g {
			if _, dup := seen[r]; dup {
				return false
			}
			seen[r] = struct{}{}
		}
	}
	return true
}

// ValidOn implements Definition 2 in full: m is valid on the given sources
// iff it is Valid and every listed source is touched by at least one GA.
func (m *MediatedSchema) ValidOn(sources []int) bool {
	if !m.Valid() {
		return false
	}
	for _, id := range sources {
		touched := false
		for _, g := range m.GAs {
			if g.TouchesSource(id) {
				touched = true
				break
			}
		}
		if !touched {
			return false
		}
	}
	return true
}

// Subsumes implements Definition 3: m subsumes other (other ⊑ m) iff every
// GA of other is contained in some GA of m.
func (m *MediatedSchema) Subsumes(other *MediatedSchema) bool {
	for _, g2 := range other.GAs {
		found := false
		for _, g1 := range m.GAs {
			if g1.ContainsAll(g2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Covering returns the index of the GA containing r, or -1.
func (m *MediatedSchema) Covering(r AttrRef) int {
	for i, g := range m.GAs {
		if g.Contains(r) {
			return i
		}
	}
	return -1
}

// NumAttributes returns the total number of attributes across all GAs.
func (m *MediatedSchema) NumAttributes() int {
	n := 0
	for _, g := range m.GAs {
		n += len(g)
	}
	return n
}

// Clone returns a deep copy.
func (m *MediatedSchema) Clone() *MediatedSchema {
	c := &MediatedSchema{GAs: make([]GA, len(m.GAs))}
	for i, g := range m.GAs {
		c.GAs[i] = append(GA(nil), g...)
	}
	return c
}

// Constraints collects the user guidance for one µBE iteration (§2.4):
// source constraints C (sources that must be part of the solution), GA
// constraints G (a partial mediated schema the output must subsume), and —
// as a natural extension of the paper's "permanently tabu regions" — an
// exclusion list of sources that must never be selected.
type Constraints struct {
	Sources []int `json:"sources,omitempty"`
	GAs     []GA  `json:"gas,omitempty"`
	Exclude []int `json:"exclude,omitempty"`
}

// ImpliedSources returns the sorted set of sources that must be in the
// solution: the explicit source constraints plus, per §2.4, every source
// contributing an attribute to a GA constraint.
func (c *Constraints) ImpliedSources() []int {
	set := make(map[int]struct{}, len(c.Sources))
	for _, id := range c.Sources {
		set[id] = struct{}{}
	}
	for _, g := range c.GAs {
		for _, r := range g {
			set[r.Source] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Validate checks the constraints against a universe: IDs and refs in
// range, GA constraints valid and pairwise disjoint (they are a partial
// mediated schema), and no source both required and excluded.
func (c *Constraints) Validate(u *Universe) error {
	for _, id := range c.Sources {
		if id < 0 || id >= u.N() {
			return fmt.Errorf("model: source constraint %d out of range [0,%d)", id, u.N())
		}
	}
	for _, id := range c.Exclude {
		if id < 0 || id >= u.N() {
			return fmt.Errorf("model: excluded source %d out of range [0,%d)", id, u.N())
		}
	}
	partial := MediatedSchema{GAs: c.GAs}
	if !partial.Valid() {
		return fmt.Errorf("model: GA constraints must form a valid partial mediated schema (valid, pairwise-disjoint GAs)")
	}
	for _, g := range c.GAs {
		for _, r := range g {
			if !u.ValidRef(r) {
				return fmt.Errorf("model: GA constraint references nonexistent attribute %+v", r)
			}
		}
	}
	excluded := make(map[int]struct{}, len(c.Exclude))
	for _, id := range c.Exclude {
		excluded[id] = struct{}{}
	}
	for _, id := range c.ImpliedSources() {
		if _, bad := excluded[id]; bad {
			return fmt.Errorf("model: source %d is both required and excluded", id)
		}
	}
	return nil
}

// Clone returns a deep copy of the constraints.
func (c *Constraints) Clone() *Constraints {
	n := &Constraints{
		Sources: append([]int(nil), c.Sources...),
		Exclude: append([]int(nil), c.Exclude...),
		GAs:     make([]GA, len(c.GAs)),
	}
	for i, g := range c.GAs {
		n.GAs[i] = append(GA(nil), g...)
	}
	return n
}
