package model

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// A SourceSet is a fixed-capacity bitset over source IDs [0, n). It is the
// working representation of candidate solutions S ⊆ U inside the search
// loop, where membership tests, copies and canonical cache keys dominate.
type SourceSet struct {
	words []uint64
	n     int
	count int
}

// NewSourceSet returns an empty set over IDs [0, n).
func NewSourceSet(n int) *SourceSet {
	return &SourceSet{words: make([]uint64, (n+63)/64), n: n}
}

// NewSourceSetOf returns a set over [0, n) containing the given IDs.
func NewSourceSetOf(n int, ids ...int) *SourceSet {
	s := NewSourceSet(n)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Cap returns the ID capacity n.
func (s *SourceSet) Cap() int { return s.n }

// Len returns the number of sources in the set.
func (s *SourceSet) Len() int { return s.count }

// Has reports whether id is in the set.
func (s *SourceSet) Has(id int) bool {
	if id < 0 || id >= s.n {
		return false
	}
	return s.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// Add inserts id. Out-of-range IDs panic: candidate sets are built only
// from universe IDs and an out-of-range insert is a bug.
func (s *SourceSet) Add(id int) {
	if id < 0 || id >= s.n {
		panic("model: SourceSet.Add out of range")
	}
	w, b := id>>6, uint64(1)<<(uint(id)&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.count++
	}
}

// Remove deletes id if present.
func (s *SourceSet) Remove(id int) {
	if id < 0 || id >= s.n {
		return
	}
	w, b := id>>6, uint64(1)<<(uint(id)&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.count--
	}
}

// Elements returns the members in ascending order.
func (s *SourceSet) Elements() []int {
	out := make([]int, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for each member in ascending order.
func (s *SourceSet) ForEach(fn func(id int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Clone returns an independent copy.
func (s *SourceSet) Clone() *SourceSet {
	c := &SourceSet{words: make([]uint64, len(s.words)), n: s.n, count: s.count}
	copy(c.words, s.words)
	return c
}

// Equal reports whether two sets have identical membership.
func (s *SourceSet) Equal(o *SourceSet) bool {
	if s.n != o.n || s.count != o.count {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ContainsAll reports whether o ⊆ s.
func (s *SourceSet) ContainsAll(o *SourceSet) bool {
	for i, w := range o.words {
		if i >= len(s.words) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for memoizing per-set computations
// (e.g. Match results). Equal sets produce equal keys.
func (s *SourceSet) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 17)
	for _, w := range s.words {
		b.WriteString(strconv.FormatUint(w, 36))
		b.WriteByte(',')
	}
	return b.String()
}

// SortedKey returns a human-readable canonical key: the sorted member IDs.
func (s *SourceSet) SortedKey() string {
	ids := s.Elements()
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}
