package model

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ube/internal/pcsa"
)

// testUniverse builds a tiny universe with predictable schemas.
func testUniverse() *Universe {
	u := &Universe{}
	schemas := [][]string{
		{"title", "author", "isbn"},
		{"title", "keyword"},
		{"author", "price", "format"},
		{"keyword"},
	}
	for i, attrs := range schemas {
		u.Sources = append(u.Sources, Source{
			ID:          i,
			Name:        "src" + string(rune('A'+i)),
			Attributes:  attrs,
			Cardinality: int64(100 * (i + 1)),
			Characteristics: map[string]float64{
				"mttf": float64(50 + 10*i),
			},
		})
	}
	return u
}

func TestUniverseBasics(t *testing.T) {
	u := testUniverse()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.N() != 4 {
		t.Errorf("N = %d", u.N())
	}
	if u.TotalCardinality() != 100+200+300+400 {
		t.Errorf("TotalCardinality = %d", u.TotalCardinality())
	}
	if u.NumAttributes() != 9 {
		t.Errorf("NumAttributes = %d", u.NumAttributes())
	}
	if got := u.AttrName(AttrRef{2, 1}); got != "price" {
		t.Errorf("AttrName = %q", got)
	}
	if !u.ValidRef(AttrRef{0, 2}) || u.ValidRef(AttrRef{0, 3}) ||
		u.ValidRef(AttrRef{4, 0}) || u.ValidRef(AttrRef{-1, 0}) {
		t.Error("ValidRef wrong")
	}
	if v, ok := u.Source(1).Characteristic("mttf"); !ok || v != 60 {
		t.Errorf("Characteristic = %v,%v", v, ok)
	}
	if _, ok := u.Source(1).Characteristic("fee"); ok {
		t.Error("missing characteristic reported present")
	}
}

func TestUniverseValidateErrors(t *testing.T) {
	mk := func(mut func(*Universe)) *Universe {
		u := testUniverse()
		mut(u)
		return u
	}
	cases := map[string]*Universe{
		"bad id":           mk(func(u *Universe) { u.Sources[2].ID = 7 }),
		"empty schema":     mk(func(u *Universe) { u.Sources[1].Attributes = nil }),
		"negative card":    mk(func(u *Universe) { u.Sources[0].Cardinality = -1 }),
		"negative charact": mk(func(u *Universe) { u.Sources[0].Characteristics["mttf"] = -3 }),
		"mixed signatures": mk(func(u *Universe) {
			u.Sources[0].Signature = pcsa.MustNew(64, 0)
			u.Sources[1].Signature = pcsa.MustNew(128, 0)
		}),
	}
	for name, u := range cases {
		if err := u.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
	// Uncooperative sources (nil signature) are fine.
	u := testUniverse()
	u.Sources[0].Signature = pcsa.MustNew(64, 0)
	if err := u.Validate(); err != nil {
		t.Errorf("partial signatures should validate: %v", err)
	}
	if !u.Sources[0].Cooperative() || u.Sources[1].Cooperative() {
		t.Error("Cooperative wrong")
	}
}

func TestGADefinition1(t *testing.T) {
	// Valid: attributes from distinct sources.
	g := NewGA(AttrRef{0, 0}, AttrRef{1, 0}, AttrRef{2, 1})
	if !g.Valid() {
		t.Error("distinct-source GA should be valid")
	}
	// Invalid: empty.
	if GA(nil).Valid() {
		t.Error("empty GA must be invalid (Definition 1)")
	}
	// Invalid: two attributes from the same source.
	bad := NewGA(AttrRef{0, 0}, AttrRef{0, 1})
	if bad.Valid() {
		t.Error("same-source GA must be invalid (Definition 1)")
	}
	// NewGA canonicalizes: dedupe + sort.
	dup := NewGA(AttrRef{1, 0}, AttrRef{0, 0}, AttrRef{1, 0})
	if len(dup) != 2 || dup[0] != (AttrRef{0, 0}) || dup[1] != (AttrRef{1, 0}) {
		t.Errorf("NewGA not canonical: %v", dup)
	}
}

func TestGASetOps(t *testing.T) {
	g := NewGA(AttrRef{0, 0}, AttrRef{1, 1}, AttrRef{3, 0})
	if !g.Contains(AttrRef{1, 1}) || g.Contains(AttrRef{1, 0}) {
		t.Error("Contains wrong")
	}
	sub := NewGA(AttrRef{0, 0}, AttrRef{3, 0})
	if !g.ContainsAll(sub) || sub.ContainsAll(g) {
		t.Error("ContainsAll wrong")
	}
	other := NewGA(AttrRef{3, 0}, AttrRef{2, 2})
	if !g.Intersects(other) {
		t.Error("Intersects should be true")
	}
	disjoint := NewGA(AttrRef{2, 0}, AttrRef{4, 4})
	if g.Intersects(disjoint) {
		t.Error("Intersects should be false")
	}
	if !g.TouchesSource(3) || g.TouchesSource(2) {
		t.Error("TouchesSource wrong")
	}
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Errorf("Sources = %v", got)
	}
	m := g.Merge(other)
	if len(m) != 4 || !m.Contains(AttrRef{2, 2}) {
		t.Errorf("Merge = %v", m)
	}
	if !g.Equal(NewGA(AttrRef{3, 0}, AttrRef{0, 0}, AttrRef{1, 1})) {
		t.Error("Equal wrong")
	}
	if g.Equal(sub) {
		t.Error("Equal false positive")
	}
}

func TestGAQuickProperties(t *testing.T) {
	// Generate random small GAs and check canonical-form invariants.
	gen := func(r *rand.Rand) GA {
		n := r.Intn(6)
		refs := make([]AttrRef, n)
		for i := range refs {
			refs[i] = AttrRef{Source: r.Intn(5), Attr: r.Intn(3)}
		}
		return NewGA(refs...)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		g, h := gen(r), gen(r)
		// Merge is commutative and contains both operands.
		m1, m2 := g.Merge(h), h.Merge(g)
		if !m1.Equal(m2) {
			t.Fatalf("merge not commutative: %v vs %v", m1, m2)
		}
		if !m1.ContainsAll(g) || !m1.ContainsAll(h) {
			t.Fatalf("merge does not contain operands")
		}
		// Intersects is symmetric and consistent with Contains.
		if g.Intersects(h) != h.Intersects(g) {
			t.Fatalf("intersects not symmetric")
		}
		// Idempotent merge.
		if !g.Merge(g).Equal(g) {
			t.Fatalf("merge not idempotent")
		}
	}
}

func TestMediatedSchemaDefinition2(t *testing.T) {
	title := NewGA(AttrRef{0, 0}, AttrRef{1, 0})
	author := NewGA(AttrRef{0, 1}, AttrRef{2, 0})
	kw := NewGA(AttrRef{1, 1}, AttrRef{3, 0})

	m := &MediatedSchema{GAs: []GA{title, author, kw}}
	if !m.Valid() {
		t.Error("disjoint valid GAs should form a valid schema")
	}
	if !m.ValidOn([]int{0, 1, 2, 3}) {
		t.Error("schema should span all four sources")
	}
	if m.ValidOn([]int{0, 1, 2, 3, 4}) {
		t.Error("schema does not touch source 4")
	}
	// Overlapping GAs are invalid.
	overlap := &MediatedSchema{GAs: []GA{title, NewGA(AttrRef{0, 0}, AttrRef{2, 1})}}
	if overlap.Valid() {
		t.Error("intersecting GAs must make the schema invalid (Definition 2)")
	}
	// A schema with an invalid GA is invalid.
	withBad := &MediatedSchema{GAs: []GA{NewGA(AttrRef{0, 0}, AttrRef{0, 1})}}
	if withBad.Valid() {
		t.Error("schema containing an invalid GA must be invalid")
	}
	// Empty schema is vacuously valid and valid on no sources.
	empty := &MediatedSchema{}
	if !empty.Valid() || !empty.ValidOn(nil) || empty.ValidOn([]int{0}) {
		t.Error("empty schema validity wrong")
	}
	if m.NumAttributes() != 6 {
		t.Errorf("NumAttributes = %d", m.NumAttributes())
	}
	if m.Covering(AttrRef{2, 0}) != 1 || m.Covering(AttrRef{2, 1}) != -1 {
		t.Error("Covering wrong")
	}
	c := m.Clone()
	c.GAs[0][0] = AttrRef{9, 9}
	if m.GAs[0][0] == (AttrRef{9, 9}) {
		t.Error("Clone is shallow")
	}
}

func TestSubsumptionDefinition3(t *testing.T) {
	big := &MediatedSchema{GAs: []GA{
		NewGA(AttrRef{0, 0}, AttrRef{1, 0}, AttrRef{2, 0}),
		NewGA(AttrRef{0, 1}, AttrRef{3, 0}),
	}}
	small := &MediatedSchema{GAs: []GA{
		NewGA(AttrRef{0, 0}, AttrRef{2, 0}),
	}}
	if !big.Subsumes(small) {
		t.Error("big should subsume small")
	}
	if small.Subsumes(big) {
		t.Error("small should not subsume big")
	}
	// Subsumption is reflexive.
	if !big.Subsumes(big) {
		t.Error("subsumption must be reflexive")
	}
	// Every schema subsumes the empty schema.
	if !small.Subsumes(&MediatedSchema{}) {
		t.Error("every schema subsumes the empty schema")
	}
	// A GA split across two GAs is not subsumed.
	split := &MediatedSchema{GAs: []GA{
		NewGA(AttrRef{0, 0}, AttrRef{3, 0}),
	}}
	if big.Subsumes(split) {
		t.Error("GA spanning two of big's GAs must not be subsumed")
	}
}

func TestSubsumptionTransitivity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	randSchema := func() *MediatedSchema {
		// Build a random valid schema by partitioning random refs.
		used := map[AttrRef]bool{}
		m := &MediatedSchema{}
		for g := 0; g < 1+r.Intn(3); g++ {
			var refs []AttrRef
			for a := 0; a < 1+r.Intn(3); a++ {
				ref := AttrRef{Source: r.Intn(6), Attr: r.Intn(2)}
				if used[ref] {
					continue
				}
				// Keep GA valid: one attr per source.
				dup := false
				for _, e := range refs {
					if e.Source == ref.Source {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				used[ref] = true
				refs = append(refs, ref)
			}
			if len(refs) > 0 {
				m.GAs = append(m.GAs, NewGA(refs...))
			}
		}
		return m
	}
	for i := 0; i < 300; i++ {
		a, b, c := randSchema(), randSchema(), randSchema()
		if b.Subsumes(a) && c.Subsumes(b) && !c.Subsumes(a) {
			t.Fatalf("subsumption not transitive:\na=%v\nb=%v\nc=%v", a, b, c)
		}
	}
}

func TestConstraints(t *testing.T) {
	u := testUniverse()
	c := &Constraints{
		Sources: []int{2},
		GAs: []GA{
			NewGA(AttrRef{0, 0}, AttrRef{1, 0}), // title/title
		},
	}
	if err := c.Validate(u); err != nil {
		t.Fatal(err)
	}
	if got := c.ImpliedSources(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("ImpliedSources = %v", got)
	}

	bad := &Constraints{Sources: []int{99}}
	if err := bad.Validate(u); err == nil {
		t.Error("out-of-range source constraint should fail")
	}
	bad = &Constraints{GAs: []GA{NewGA(AttrRef{0, 9})}}
	if err := bad.Validate(u); err == nil {
		t.Error("dangling GA ref should fail")
	}
	bad = &Constraints{GAs: []GA{{}}}
	if err := bad.Validate(u); err == nil {
		t.Error("empty GA constraint should fail")
	}
	bad = &Constraints{GAs: []GA{
		NewGA(AttrRef{0, 0}, AttrRef{1, 0}),
		NewGA(AttrRef{0, 0}, AttrRef{2, 0}),
	}}
	if err := bad.Validate(u); err == nil {
		t.Error("overlapping GA constraints should fail")
	}
	bad = &Constraints{Sources: []int{1}, Exclude: []int{1}}
	if err := bad.Validate(u); err == nil {
		t.Error("required+excluded source should fail")
	}
	bad = &Constraints{Exclude: []int{-1}}
	if err := bad.Validate(u); err == nil {
		t.Error("out-of-range exclusion should fail")
	}
	// GA-implied sources also conflict with exclusions.
	bad = &Constraints{
		GAs:     []GA{NewGA(AttrRef{0, 0}, AttrRef{1, 0})},
		Exclude: []int{0},
	}
	if err := bad.Validate(u); err == nil {
		t.Error("excluding a GA-constraint source should fail")
	}

	cl := c.Clone()
	cl.Sources[0] = 3
	cl.GAs[0][0] = AttrRef{3, 0}
	if c.Sources[0] != 2 || c.GAs[0][0] != (AttrRef{0, 0}) {
		t.Error("Clone is shallow")
	}
}

func TestUniverseJSONRoundTrip(t *testing.T) {
	u := testUniverse()
	sig := pcsa.MustNew(64, 3)
	for i := 0; i < 500; i++ {
		sig.AddUint64(uint64(i))
	}
	u.Sources[0].Signature = sig

	data, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var back Universe
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.N() != u.N() || back.TotalCardinality() != u.TotalCardinality() {
		t.Error("round trip changed universe shape")
	}
	if back.Sources[0].Signature == nil ||
		back.Sources[0].Signature.Estimate() != sig.Estimate() {
		t.Error("signature lost in round trip")
	}
	if back.Sources[1].Signature != nil {
		t.Error("nil signature should stay nil")
	}
	if back.Sources[2].Characteristics["mttf"] != 70 {
		t.Error("characteristics lost")
	}
}

func TestSourceSetBasics(t *testing.T) {
	s := NewSourceSet(200)
	if s.Cap() != 200 || s.Len() != 0 {
		t.Error("fresh set wrong")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	s.Add(64) // duplicate
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if !s.Has(63) || s.Has(62) || s.Has(-1) || s.Has(200) {
		t.Error("Has wrong")
	}
	if got := s.Elements(); !reflect.DeepEqual(got, []int{0, 63, 64, 199}) {
		t.Errorf("Elements = %v", got)
	}
	s.Remove(63)
	s.Remove(63) // double remove
	s.Remove(-5) // out of range is a no-op
	if s.Len() != 3 || s.Has(63) {
		t.Error("Remove wrong")
	}
	var visited []int
	s.ForEach(func(id int) { visited = append(visited, id) })
	if !reflect.DeepEqual(visited, []int{0, 64, 199}) {
		t.Errorf("ForEach = %v", visited)
	}
	c := s.Clone()
	c.Add(5)
	if s.Has(5) {
		t.Error("Clone not independent")
	}
	if !s.Equal(NewSourceSetOf(200, 0, 64, 199)) {
		t.Error("Equal wrong")
	}
	if s.Equal(NewSourceSetOf(200, 0, 64)) || s.Equal(NewSourceSetOf(100, 0, 64, 99)) {
		t.Error("Equal false positive")
	}
	if !s.ContainsAll(NewSourceSetOf(200, 0, 199)) {
		t.Error("ContainsAll wrong")
	}
	if s.ContainsAll(NewSourceSetOf(200, 0, 1)) {
		t.Error("ContainsAll false positive")
	}
}

func TestSourceSetAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range should panic")
		}
	}()
	NewSourceSet(10).Add(10)
}

func TestSourceSetKeys(t *testing.T) {
	a := NewSourceSetOf(300, 3, 77, 250)
	b := NewSourceSetOf(300, 250, 3, 77)
	if a.Key() != b.Key() {
		t.Error("equal sets must have equal keys")
	}
	c := NewSourceSetOf(300, 3, 77)
	if a.Key() == c.Key() {
		t.Error("different sets must have different keys")
	}
	if a.SortedKey() != "3,77,250" {
		t.Errorf("SortedKey = %q", a.SortedKey())
	}
}

func TestSourceSetQuick(t *testing.T) {
	// Set semantics match a reference map implementation.
	prop := func(ops []uint16) bool {
		s := NewSourceSet(1 << 16)
		ref := map[int]bool{}
		for i, op := range ops {
			id := int(op)
			if i%3 == 2 {
				s.Remove(id)
				delete(ref, id)
			} else {
				s.Add(id)
				ref[id] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for id := range ref {
			if !s.Has(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniverseJSONWithAttrSignatures(t *testing.T) {
	u := testUniverse()
	for i := range u.Sources {
		src := &u.Sources[i]
		src.AttrSignatures = make([]*pcsa.Sketch, len(src.Attributes))
		for a := range src.Attributes {
			sig := pcsa.MustNew(64, 9)
			for v := 0; v < 100*(a+1); v++ {
				sig.AddUint64(uint64(i*10000 + a*1000 + v))
			}
			src.AttrSignatures[a] = sig
		}
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var back Universe
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range u.Sources {
		for a := range u.Sources[i].Attributes {
			want := u.Sources[i].AttrSignatures[a].Estimate()
			got := back.Sources[i].AttrSignatures[a].Estimate()
			if want != got {
				t.Fatalf("source %d attr %d signature lost: %v vs %v", i, a, got, want)
			}
		}
	}
}

func TestAttrSignatureValidation(t *testing.T) {
	u := testUniverse()
	// Misaligned signature count.
	u.Sources[0].AttrSignatures = []*pcsa.Sketch{pcsa.MustNew(64, 0)}
	if err := u.Validate(); err == nil {
		t.Error("misaligned AttrSignatures accepted")
	}
	// Nil entry.
	u = testUniverse()
	u.Sources[1].AttrSignatures = make([]*pcsa.Sketch, len(u.Sources[1].Attributes))
	if err := u.Validate(); err == nil {
		t.Error("nil attr signature accepted")
	}
	// Incompatible parameters across sources.
	u = testUniverse()
	u.Sources[0].AttrSignatures = []*pcsa.Sketch{pcsa.MustNew(64, 0), pcsa.MustNew(64, 0), pcsa.MustNew(64, 0)}
	u.Sources[1].AttrSignatures = []*pcsa.Sketch{pcsa.MustNew(128, 0), pcsa.MustNew(128, 0)}
	if err := u.Validate(); err == nil {
		t.Error("incompatible attr signatures accepted")
	}
}
