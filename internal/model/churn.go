package model

import "ube/internal/pcsa"

// Universe mutation ops. A mutation batch applies sequentially: each
// mutation's ID refers to the universe state after the preceding
// mutations of the same batch, and a remove renumbers every following
// source down by one (preserving Universe.Validate's dense-ID
// invariant). The engine owns application (engine.ApplyChurn); this
// package owns only the vocabulary, so schedule generators and codecs
// need not depend on the engine.
const (
	OpAdd    = "add"
	OpRemove = "remove"
	OpUpdate = "update"
)

// Mutation is one universe edit.
type Mutation struct {
	// Op is one of OpAdd, OpRemove, OpUpdate.
	Op string `json:"op"`
	// Source is the source to add (OpAdd). Its ID field is ignored;
	// the new source is appended and numbered len(universe). Schema or
	// signature changes to an existing source are expressed as a
	// remove followed by an add — they invalidate the matcher's view
	// of the source wholesale, so there is no cheaper path to offer.
	Source Source `json:"source,omitempty"`
	// ID targets an existing source (OpRemove, OpUpdate).
	ID int `json:"id,omitempty"`
	// Cardinality, when non-nil, replaces the target's reported tuple
	// count (OpUpdate).
	Cardinality *int64 `json:"cardinality,omitempty"`
	// Characteristics, when non-nil, replaces the target's
	// characteristic map wholesale (OpUpdate).
	Characteristics map[string]float64 `json:"characteristics,omitempty"`
}

// CloneMutations deep-copies a mutation batch (shared immutable
// sketches stay shared).
func CloneMutations(muts []Mutation) []Mutation {
	out := append([]Mutation(nil), muts...)
	for i := range out {
		m := &out[i]
		m.Source.Attributes = append([]string(nil), m.Source.Attributes...)
		m.Source.AttrSignatures = append([]*pcsa.Sketch(nil), m.Source.AttrSignatures...)
		if m.Source.Characteristics != nil {
			cc := make(map[string]float64, len(m.Source.Characteristics))
			//ube:nondeterministic-ok key-for-key map copy is order-independent
			for k, v := range m.Source.Characteristics {
				cc[k] = v
			}
			m.Source.Characteristics = cc
		}
		if m.Cardinality != nil {
			c := *m.Cardinality
			m.Cardinality = &c
		}
		if m.Characteristics != nil {
			cc := make(map[string]float64, len(m.Characteristics))
			//ube:nondeterministic-ok key-for-key map copy is order-independent
			for k, v := range m.Characteristics {
				cc[k] = v
			}
			m.Characteristics = cc
		}
	}
	return out
}
