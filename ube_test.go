// Facade tests: exercise the library exactly as a downstream user would,
// through the public ube package only.
package ube_test

import (
	"strings"
	"testing"

	"ube"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// Describe a tiny universe by hand.
	sig := func(lo, hi int) *ube.Signature {
		s, err := ube.NewSignature(ube.DefaultSignatureMaps, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			s.AddTuple("isbn", string(rune('a'+i%26)), string(rune('0'+i%10)), string(rune('0'+(i/10)%10)), string(rune('0'+(i/100)%10)))
		}
		return s
	}
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "a", Attributes: []string{"title", "author"}, Cardinality: 500, Signature: sig(0, 500),
			Characteristics: map[string]float64{"mttf": 100}},
		{ID: 1, Name: "b", Attributes: []string{"title", "author"}, Cardinality: 400, Signature: sig(100, 500),
			Characteristics: map[string]float64{"mttf": 150}},
		{ID: 2, Name: "c", Attributes: []string{"titles", "writer"}, Cardinality: 300, Signature: sig(500, 800),
			Characteristics: map[string]float64{"mttf": 80}},
	}}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	eng, err := ube.NewEngine(u)
	if err != nil {
		t.Fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 2
	sol, err := eng.Solve(&prob)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || len(sol.Sources) == 0 || len(sol.Sources) > 2 {
		t.Fatalf("solve failed: %+v", sol)
	}
	if sol.Schema == nil || !sol.Schema.Valid() {
		t.Fatal("no valid schema")
	}
}

func TestPublicSessionFlow(t *testing.T) {
	u, truth, err := ube.Generate(ube.QuickWorkload(40))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ube.NewEngine(u)
	if err != nil {
		t.Fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 8
	prob.MaxEvals = 800
	sess := ube.NewSession(eng, prob)
	sol, err := sess.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Table-1 style evaluation through the facade.
	rep := ube.EvaluateGAs(truth, sol.Sources, sol.Schema)
	if rep.FalseGAs != 0 {
		t.Errorf("false GAs on the synthetic workload: %d", rep.FalseGAs)
	}
	if rep.TrueGAs == 0 || rep.TrueGAs > ube.NumConcepts {
		t.Errorf("TrueGAs = %d", rep.TrueGAs)
	}
	// Feedback loop.
	if err := sess.PinGAFromSolution(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		t.Fatal(err)
	}
	if len(sess.History()) != 2 {
		t.Error("history wrong")
	}
}

func TestPublicSchemaIO(t *testing.T) {
	const fig1 = `a.example: {keyword, city} | cardinality=100
b.example: {keyword, town}
`
	u, err := ube.ParseSchemas(strings.NewReader(fig1))
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 2 || u.Sources[0].Cardinality != 100 {
		t.Fatalf("parse wrong: %+v", u.Sources)
	}
	var buf strings.Builder
	if err := ube.WriteSchemas(&buf, u); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a.example: {keyword, city}") {
		t.Errorf("write wrong:\n%s", buf.String())
	}
}

func TestPublicComposites(t *testing.T) {
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "split", Attributes: []string{"first name", "last name"}, Cardinality: 1},
		{ID: 1, Name: "whole", Attributes: []string{"full name"}, Cardinality: 1},
	}}
	derived, mapping, err := ube.ApplyComposites(u, []ube.Composite{
		{Source: 0, Attrs: []int{0, 1}, Name: "full name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ube.NewEngine(derived)
	if err != nil {
		t.Fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 2
	prob.Characteristics = nil
	prob.Weights = ube.Weights{ube.MatchQEFName: 0.7, "card": 0.1, "coverage": 0.1, "redundancy": 0.1}
	sol, err := eng.Solve(&prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Schema == nil || len(sol.Schema.GAs) != 1 {
		t.Fatalf("derived match failed: %+v", sol.Schema)
	}
	nm := mapping.ExpandGA(sol.Schema.GAs[0])
	total := 0
	for _, grp := range nm.Groups {
		total += len(grp)
	}
	if total != 3 {
		t.Errorf("expanded n:m match covers %d original attributes, want 3", total)
	}
}

func TestPublicValueMeasure(t *testing.T) {
	cfg := ube.QuickWorkload(30)
	cfg.WithSignatures = false
	cfg.WithAttrSignatures = true
	u, _, err := ube.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ube.NewValueMeasure(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ube.NewEngine(u, ube.WithMeasure(m))
	if err != nil {
		t.Fatal(err)
	}
	prob := ube.DefaultProblem()
	prob.MaxSources = 6
	prob.MaxEvals = 500
	if _, err := eng.Solve(&prob); err != nil {
		t.Fatal(err)
	}
}

func TestPublicQueryExecution(t *testing.T) {
	u := &ube.Universe{Sources: []ube.Source{
		{ID: 0, Name: "a", Attributes: []string{"title", "price"}, Cardinality: 2},
		{ID: 1, Name: "b", Attributes: []string{"title", "price"}, Cardinality: 2},
	}}
	schema := &ube.MediatedSchema{GAs: []ube.GA{
		ube.NewGA(ube.AttrRef{Source: 0, Attr: 0}, ube.AttrRef{Source: 1, Attr: 0}),
		ube.NewGA(ube.AttrRef{Source: 0, Attr: 1}, ube.AttrRef{Source: 1, Attr: 1}),
	}}
	sys, err := ube.NewIntegrationSystem(u, []int{0, 1}, schema)
	if err != nil {
		t.Fatal(err)
	}
	providers := map[int]ube.TupleProvider{
		0: &ube.MemProvider{Rows: [][]string{{"x", "10"}, {"y", "20"}}},
		1: &ube.MemProvider{Rows: [][]string{{"y", "20"}, {"z", "30"}}},
	}
	res, err := ube.ExecuteQuery(sys, providers, ube.MediatedQuery{Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Stats.DuplicatesRemoved != 1 {
		t.Errorf("query result wrong: %+v", res)
	}
}

func TestPublicHelpers(t *testing.T) {
	if _, ok := ube.OptimizerByName("tabu"); !ok {
		t.Error("tabu missing")
	}
	if ube.NewTabu().Name() != "tabu" {
		t.Error("NewTabu wrong")
	}
	if _, ok := ube.AggregatorByName("wsum"); !ok {
		t.Error("wsum missing")
	}
	if ube.DefaultMeasure().Score("title", "title") != 1 {
		t.Error("default measure wrong")
	}
	if ube.NewNGramJaccard(2).Score("ab", "ab") != 1 {
		t.Error("2-gram measure wrong")
	}
	s := ube.NewSourceSet(10)
	s.Add(3)
	if !s.Has(3) {
		t.Error("source set wrong")
	}
	g := ube.NewGA(ube.AttrRef{Source: 0, Attr: 0}, ube.AttrRef{Source: 1, Attr: 0})
	if !g.Valid() {
		t.Error("GA helper wrong")
	}
}
