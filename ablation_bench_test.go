// Ablation benchmarks for the design choices DESIGN.md calls out: the
// θ-threshold name adjacency index, the dense precomputed similarity
// matrix, Match memoization, PCSA sketch sizing, and tabu tenure. Each
// sub-benchmark pair isolates one mechanism so its contribution is
// directly readable from ns/op (or the reported metric).
package ube

import (
	"fmt"
	"math"
	"testing"

	"ube/internal/cluster"
	"ube/internal/engine"
	"ube/internal/experiments"
	"ube/internal/model"
	"ube/internal/pcsa"
	"ube/internal/search"
	"ube/internal/strsim"
	"ube/internal/synth"
)

// ablationUniverse generates the shared workload for matcher ablations.
func ablationUniverse(b *testing.B, n int) *model.Universe {
	b.Helper()
	cfg := synth.QuickConfig(n)
	cfg.WithSignatures = false
	u, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// matcherConfigs builds the cluster configs for the index/matrix ablation.
// mustAblationMatrix builds the dense matrix for a benchmark vocabulary,
// panicking on the (impossible at these sizes) over-limit error.
func mustAblationMatrix(c *strsim.Cache) *strsim.Matrix {
	m, err := c.BuildMatrix()
	if err != nil {
		panic(err)
	}
	return m
}

func matcherConfigs(u *model.Universe) map[string]cluster.Config {
	mkCache := func() *strsim.Cache {
		c := strsim.NewCache(nil)
		for i := range u.Sources {
			for _, a := range u.Sources[i].Attributes {
				c.Intern(a)
			}
		}
		return c
	}
	lazy := mkCache()
	dense := mkCache()
	matrix := mustAblationMatrix(dense)
	indexed := mkCache()
	idxMatrix := mustAblationMatrix(indexed)

	return map[string]cluster.Config{
		"lazy-cache": {Theta: 0.65, Beta: 2, Sim: lazy},
		"matrix":     {Theta: 0.65, Beta: 2, Sim: dense, Scores: matrix},
		"matrix+index": {
			Theta: 0.65, Beta: 2, Sim: indexed,
			Scores: idxMatrix, Neighbors: idxMatrix.Neighbors(0.65),
		},
	}
}

// BenchmarkAblationMatcherScoring isolates the scoring substrate of
// Algorithm 1: lazy mutex-guarded cache, dense precomputed matrix, and
// matrix plus the ≥θ adjacency index used to prune pair enumeration.
func BenchmarkAblationMatcherScoring(b *testing.B) {
	u := ablationUniverse(b, 60)
	S := make([]int, 20)
	for i := range S {
		S[i] = i * 3
	}
	for _, name := range []string{"lazy-cache", "matrix", "matrix+index"} {
		cfg := matcherConfigs(u)[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cluster.Match(u, S, nil, nil, cfg)
			}
		})
	}
}

// BenchmarkAblationMatchCache quantifies the engine's Match memo table by
// running identical solves with and without it.
func BenchmarkAblationMatchCache(b *testing.B) {
	cfg := synth.QuickConfig(60)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, cached := range []bool{true, false} {
		name := "memoized"
		var opts []engine.Option
		if !cached {
			name = "uncached"
			opts = append(opts, engine.WithoutMatchCache())
		}
		b.Run(name, func(b *testing.B) {
			e, err := engine.New(u, opts...)
			if err != nil {
				b.Fatal(err)
			}
			p := engine.DefaultProblem()
			p.MaxSources = 10
			p.MaxEvals = 2000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Solve(&p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSketchSize sweeps the PCSA bitmap count, reporting the
// accuracy/memory trade: worst-case union-estimation error (percent) and
// bytes per source.
func BenchmarkAblationSketchSize(b *testing.B) {
	const distinct = 50000
	for _, maps := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("maps=%d", maps), func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				worst = 0
				for seed := uint64(1); seed <= 3; seed++ {
					a := pcsa.MustNew(maps, seed)
					c := pcsa.MustNew(maps, seed)
					for t := 0; t < distinct/2; t++ {
						a.AddUint64(uint64(t))
					}
					for t := distinct / 4; t < distinct; t++ {
						c.AddUint64(uint64(t))
					}
					union, err := pcsa.Union(a, c)
					if err != nil {
						b.Fatal(err)
					}
					e := math.Abs(union.Estimate()-distinct) / distinct * 100
					if e > worst {
						worst = e
					}
				}
			}
			b.ReportMetric(worst, "worstErr%")
			b.ReportMetric(float64(maps*8), "bytes/source")
		})
	}
}

// BenchmarkAblationTabuTenure sweeps the tabu tenure on the µBE objective,
// reporting solution quality per setting at a fixed budget.
func BenchmarkAblationTabuTenure(b *testing.B) {
	cfg := synth.QuickConfig(60)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(u)
	if err != nil {
		b.Fatal(err)
	}
	for _, tenure := range []int{2, 8, 20} {
		b.Run(fmt.Sprintf("tenure=%d", tenure), func(b *testing.B) {
			t := search.NewTabu()
			t.Tenure = tenure
			q := 0.0
			for i := 0; i < b.N; i++ {
				p := engine.DefaultProblem()
				p.MaxSources = 10
				p.MaxEvals = 1500
				p.Optimizer = t
				sol, err := e.Solve(&p)
				if err != nil {
					b.Fatal(err)
				}
				q = sol.Quality
			}
			b.ReportMetric(q, "quality")
		})
	}
}

// BenchmarkAblationWarmStart measures what warm-starting a solve from a
// converged solution buys over a cold start at a small refinement budget.
func BenchmarkAblationWarmStart(b *testing.B) {
	cfg := synth.QuickConfig(60)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(u)
	if err != nil {
		b.Fatal(err)
	}
	base := engine.DefaultProblem()
	base.MaxSources = 10
	base.MaxEvals = 4000
	ref, err := e.Solve(&base)
	if err != nil {
		b.Fatal(err)
	}
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			q := 0.0
			for i := 0; i < b.N; i++ {
				p := engine.DefaultProblem()
				p.MaxSources = 10
				p.MaxEvals = 400 // refinement-sized budget
				if warm {
					p.InitialSources = ref.Sources
				}
				sol, err := e.Solve(&p)
				if err != nil {
					b.Fatal(err)
				}
				q = sol.Quality
			}
			b.ReportMetric(q, "quality")
		})
	}
}

// BenchmarkIncrementalEval isolates the incremental evaluation pipeline —
// heap clustering agenda, delta-aware objective and incumbent snapshot
// cache — against the seed path (WithLegacyEvaluation) on the hardest
// unconstrained Figure 6 cells at quick scale. `ube-bench -exp
// incremental` runs the same ablation at paper scale (N=200, m=40/50) and
// records it in BENCH_incremental.json.
func BenchmarkIncrementalEval(b *testing.B) {
	ms, n := experiments.IncrementalMs(experiments.Options{Quick: true})
	cfg := synth.QuickConfig(n)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"legacy", "incremental"} {
		for _, m := range ms {
			b.Run(fmt.Sprintf("%s/m=%d", mode, m), func(b *testing.B) {
				var opts []engine.Option
				if mode == "legacy" {
					opts = append(opts, engine.WithLegacyEvaluation())
				}
				// Fresh engine per sub-benchmark so neither pipeline
				// rides the other's match memo.
				e, err := engine.New(u, opts...)
				if err != nil {
					b.Fatal(err)
				}
				p := engine.DefaultProblem()
				p.MaxSources = m
				p.MaxEvals = 2000
				q := 0.0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sol, err := e.Solve(&p)
					if err != nil {
						b.Fatal(err)
					}
					q = sol.Quality
				}
				b.ReportMetric(q, "quality")
			})
		}
	}
}

// BenchmarkAblationParallelSolve measures the wall-clock effect of fanning
// candidate evaluations across workers inside the solver.
func BenchmarkAblationParallelSolve(b *testing.B) {
	cfg := synth.QuickConfig(60)
	u, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// A fresh engine per sub-benchmark: a shared match memo
			// would let later runs ride the earlier runs' cache.
			e, err := engine.New(u)
			if err != nil {
				b.Fatal(err)
			}
			p := engine.DefaultProblem()
			p.MaxSources = 12
			p.MaxEvals = 4000
			p.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Solve(&p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
