// Benchmarks regenerating each table and figure of the paper's evaluation
// (§7), plus micro-benchmarks of the hot substrates. To keep `go test
// -bench=.` tractable these run the scaled-down workload with a reduced
// solver budget; `cmd/ube-bench` runs the same experiments at paper scale
// (700 sources, 4M-tuple pool) and prints the full tables recorded in
// EXPERIMENTS.md.
package ube

import (
	"fmt"
	"testing"

	"ube/internal/experiments"
	"ube/internal/pcsa"
	"ube/internal/strsim"
)

// benchOpts is the shared scale for experiment benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, MaxEvals: 600}
}

// solveCell runs one (m, variant) solve on a prepared setup and returns
// the quality.
func solveCell(b *testing.B, s *experiments.Setup, m int, v experiments.Variant) float64 {
	b.Helper()
	o := benchOpts()
	p, err := s.Problem(m, v, o, int64(m))
	if err != nil {
		b.Fatal(err)
	}
	sol, err := s.E.Solve(&p)
	if err != nil {
		b.Fatal(err)
	}
	return sol.Quality
}

// BenchmarkFig5UniverseSize regenerates Figure 5: solve time as the
// universe grows, per constraint variant (ns/op is the figure's y-axis).
func BenchmarkFig5UniverseSize(b *testing.B) {
	o := benchOpts()
	sizes, m := experiments.Fig5Sizes(o)
	for _, n := range sizes {
		s, err := experiments.NewSetup(n, o)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range experiments.Variants {
			b.Run(fmt.Sprintf("N=%d/%s", n, v.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveCell(b, s, m, v)
				}
			})
		}
	}
}

// BenchmarkFig6SourcesToChoose regenerates Figure 6: solve time as the
// number of sources to choose grows, per constraint variant.
func BenchmarkFig6SourcesToChoose(b *testing.B) {
	o := benchOpts()
	ms, n := experiments.Fig6Ms(o)
	s, err := experiments.NewSetup(n, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range ms {
		for _, v := range experiments.Variants {
			b.Run(fmt.Sprintf("m=%d/%s", m, v.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveCell(b, s, m, v)
				}
			})
		}
	}
}

// BenchmarkFig7OverallQuality regenerates Figure 7: the overall quality of
// the solution for the Figure 6 grid, reported as the "quality" metric.
func BenchmarkFig7OverallQuality(b *testing.B) {
	o := benchOpts()
	ms, n := experiments.Fig6Ms(o)
	s, err := experiments.NewSetup(n, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range ms {
		for _, v := range experiments.Variants {
			b.Run(fmt.Sprintf("m=%d/%s", m, v.Name), func(b *testing.B) {
				q := 0.0
				for i := 0; i < b.N; i++ {
					q = solveCell(b, s, m, v)
				}
				b.ReportMetric(q, "quality")
			})
		}
	}
}

// BenchmarkFig8WeightSensitivity regenerates Figure 8: the cardinality of
// the chosen solution as the weight on the Card QEF grows, reported as the
// "card" metric per weight point.
func BenchmarkFig8WeightSensitivity(b *testing.B) {
	rows, err := experiments.Fig8(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(fmt.Sprintf("w=%.1f", row.Weight), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The solve itself is benchmarked in Fig6; here the
				// figure's y-value is the point of the experiment.
			}
			b.ReportMetric(row.Card, "card")
			b.ReportMetric(row.Quality, "quality")
		})
	}
}

// BenchmarkTable1GAQuality regenerates Table 1: true GAs selected,
// attributes covered and true GAs missed per m, reported as metrics.
func BenchmarkTable1GAQuality(b *testing.B) {
	rows, err := experiments.Table1(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(fmt.Sprintf("m=%d", row.M), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(float64(row.TrueGAs), "trueGAs")
			b.ReportMetric(float64(row.Attrs), "attrsInTrueGAs")
			b.ReportMetric(float64(row.Missed), "missedGAs")
			b.ReportMetric(float64(row.False), "falseGAs")
		})
	}
}

// BenchmarkPCSAAccuracy regenerates the §7.3 accuracy check: union
// estimates against exact counts, reporting the worst relative error.
func BenchmarkPCSAAccuracy(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.PCSAAccuracy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = res.WorstErrPct
	}
	b.ReportMetric(worst, "worstErr%")
}

// BenchmarkWeightPerturbation regenerates the §7.4 sensitivity check: ±15%
// weight noise, reporting the worst GA and source churn.
func BenchmarkWeightPerturbation(b *testing.B) {
	var gas, srcs int
	for i := 0; i < b.N; i++ {
		res, err := experiments.WeightPerturbation(benchOpts(), 3)
		if err != nil {
			b.Fatal(err)
		}
		gas, srcs = res.MaxGAsChanged, res.MaxSourcesChanged
	}
	b.ReportMetric(float64(gas), "maxGAsChanged")
	b.ReportMetric(float64(srcs), "maxSourcesChanged")
}

// BenchmarkSolverComparison re-runs the §6 optimizer ablation under a
// shared budget, one sub-benchmark per solver with its mean quality.
func BenchmarkSolverComparison(b *testing.B) {
	rows, err := experiments.SolverComparison(benchOpts(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(row.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(row.Quality, "quality")
			b.ReportMetric(row.Seconds*1e3, "ms/solve")
		})
	}
}

// BenchmarkEngineSolve is the end-to-end micro-benchmark: one full solve
// on the quick workload.
func BenchmarkEngineSolve(b *testing.B) {
	o := benchOpts()
	s, err := experiments.NewSetup(60, o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveCell(b, s, 10, experiments.Variants[0])
	}
}

// BenchmarkSignatureAdd measures PCSA ingest throughput (tuples/sec is the
// cost a cooperating source pays, §4).
func BenchmarkSignatureAdd(b *testing.B) {
	s := pcsa.MustNew(pcsa.DefaultMaps, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}

// BenchmarkSignatureUnionEstimate measures the cost of one coverage-style
// union estimate over 20 sources — the inner loop of every QEF evaluation.
func BenchmarkSignatureUnionEstimate(b *testing.B) {
	sigs := make([]*pcsa.Sketch, 20)
	for i := range sigs {
		sigs[i] = pcsa.MustNew(pcsa.DefaultMaps, 1)
		for t := 0; t < 5000; t++ {
			sigs[i].AddUint64(uint64(i*100000 + t))
		}
	}
	scratch := sigs[0].Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Reset()
		for _, s := range sigs {
			if err := scratch.UnionInto(s); err != nil {
				b.Fatal(err)
			}
		}
		_ = scratch.Estimate()
	}
}

// BenchmarkSimilarity3Gram measures the paper's attribute similarity
// measure on a representative name pair.
func BenchmarkSimilarity3Gram(b *testing.B) {
	m := strsim.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score("publication date", "publication year")
	}
}

// BenchmarkDataSimMatching compares name-based and data-based matching on
// the Table 1 metrics (a §3 extension the paper leaves open), reporting
// attribute recall for both.
func BenchmarkDataSimMatching(b *testing.B) {
	rows, err := experiments.DataSim(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	last := rows[len(rows)-1]
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(float64(last.NameAttrs), "nameAttrs")
	b.ReportMetric(float64(last.DataAttrs), "dataAttrs")
}

// BenchmarkUncooperative reports solution quality and true coverage when
// half the sources withhold signatures (§4).
func BenchmarkUncooperative(b *testing.B) {
	rows, err := experiments.Uncooperative(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	half := rows[2] // the 50% row
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(half.Quality, "quality@50%")
	b.ReportMetric(half.TrueCoverage, "trueCoverage@50%")
}
